"""The project-specific rule families of ``repro.lint``.

Three families (DESIGN.md §11):

* **D — determinism.**  Protects the byte-identical golden guarantee
  (``tests/golden/``): no ad-hoc randomness outside
  :mod:`repro.common.rng`, no wall-clock reads in simulation modules, no
  iteration over hash-ordered containers on paths that feed results.
* **H — hot path.**  Protects the PR 2 kernel fast path: structs on the
  :mod:`repro.lint.hotpath` manifest stay slotted and slim, the inlined
  event loops stay free of formatting/logging/exception-handling.
* **C — contracts.**  API hygiene: no bare ``except``, no mutable
  default arguments, exceptions derive from
  :class:`~repro.common.errors.ReproError`, public ``repro.common`` /
  ``repro.hybrid`` / ``repro.lint`` functions carry full type hints.

Every rule is registered in :data:`RULES` with a one-line description
(``profess lint --list-rules``).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.engine import (
    ClassInfo,
    Finding,
    ModuleInfo,
    ProjectIndex,
    resolve_dotted,
)

#: Rule id -> one-line description (the authoritative rule registry).
RULES: dict[str, str] = {
    "D101": "import of the stdlib `random` module outside repro.common.rng",
    "D102": "numpy.random use outside repro.common.rng (seeded substreams only)",
    "D103": "wall-clock/entropy read (time.time, datetime.now, os.urandom, "
    "uuid) in a simulation module",
    "D104": "iteration over a set literal/constructor in a simulation module "
    "(hash order leaks into results)",
    "D105": "dict subscript or key built from id() in a simulation module "
    "(address-dependent state)",
    "D110": "flow-sensitive determinism taint: a value derived from a "
    "nondeterministic source reaches simulation state (full source→sink "
    "trace attached)",
    "D111": "nondeterministic callable (clock/entropy/random) aliased to "
    "a local name and invoked in a simulation module",
    "D112": "determinism taint crosses a call boundary: a helper returns "
    "a nondeterministic value that reaches simulation state",
    "H200": "hot-path manifest entry does not resolve to a definition",
    "H201": "class on the hot-path manifest does not declare __slots__",
    "H202": "attribute not in __slots__ assigned on a slotted class",
    "H203": "f-string, logging/print, or try/except inside a hot-path "
    "function (error-path raise excepted)",
    "H204": "per-request object allocation (container display, "
    "comprehension, lambda/nested def, allocating constructor) inside a "
    "batched tick-loop function (error-path raise excepted)",
    "C301": "bare `except:` (swallows SystemExit/KeyboardInterrupt)",
    "C302": "mutable default argument",
    "C303": "raised exception does not derive from ReproError",
    "C304": "public function in an annotated package lacks complete type "
    "hints",
    "C305": "direct policy-class construction outside repro.policies/"
    "repro.core (use repro.policies.registry.build_policy)",
    "C306": "broad `except Exception` handler that swallows the error "
    "(no raise in the handler body)",
    "K401": "cache-key soundness: a field excluded from the class's "
    "cache_token()/cache_key() walk is read on a simulation path and is "
    "not on the _CACHE_NEUTRAL_FIELDS allowlist",
    "K402": "stale _CACHE_NEUTRAL_FIELDS allowlist entry: names no "
    "field, or a field the token walk already covers",
    "K403": "impure operation (I/O, env, clock, randomness, global "
    "mutation) reachable from cache_token()/cache_key() computation",
    "W001": "`# repro: noqa` suppression that no longer matches any "
    "finding (reported under --show-unused-noqa)",
    "E999": "file could not be parsed",
}

#: Packages whose modules count as "simulation modules" for D103-D105.
SIM_PACKAGES = ("sim", "mem", "hybrid", "core", "cache", "cpu")
#: Packages whose public functions must be fully annotated (C304).
#: Mirrors the mypy strict-override list in pyproject.toml — extend both
#: together.
ANNOTATED_PACKAGES = (
    "repro.common",
    "repro.hybrid",
    "repro.lint",
    "repro.exec",
    "repro.mem",
)
#: The only module allowed to touch random sources (D101/D102).
RNG_MODULE = "repro.common.rng"

#: Wall-clock and entropy reads banned in simulation modules (D103).
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
    }
)

#: Builtin exception types C303 refuses (`raise ValueError(...)` etc.).
#: NotImplementedError and AssertionError stay legal: they signal
#: programmer errors, not library failure modes callers should catch.
_BANNED_BUILTIN_RAISES = frozenset(
    {
        "BaseException",
        "Exception",
        "ArithmeticError",
        "AttributeError",
        "BufferError",
        "EOFError",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "NameError",
        "OSError",
        "RuntimeError",
        "StopIteration",
        "SystemError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


#: Allocating constructors banned inside batched tick-loop functions
#: (H204).  Method calls (``free.pop()``, ``queue._grow()``) stay legal:
#: the rule targets fresh per-event objects, not reuse of preallocated
#: state.
_BATCH_ALLOC_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "frozenset",
        "tuple",
        "bytearray",
        "deque",
        "collections.deque",
        "partial",
        "functools.partial",
    }
)


#: Concrete policy classes C305 refuses to see constructed outside the
#: policy packages: direct construction bypasses the registry's axis
#: resolution and canonical naming (repro.policies.registry).
_POLICY_CLASSES = frozenset(
    {
        "StaticPolicy",
        "CameoPolicy",
        "PoMPolicy",
        "SilcFMPolicy",
        "MemPodPolicy",
        "MDMPolicy",
        "ProFessPolicy",
        "RSMGuidedPoMPolicy",
    }
)
#: Packages allowed to construct policy classes directly (C305): the
#: registry factory itself and the defining/subclassing modules.
_POLICY_PACKAGES = ("repro.policies", "repro.core")


def _in_policy_scope(module: str) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in _POLICY_PACKAGES
    )


def _in_sim_scope(module: str) -> bool:
    parts = module.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] in SIM_PACKAGES


def _in_annotated_scope(module: str) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in ANNOTATED_PACKAGES
    )


class _Checker(ast.NodeVisitor):
    """Single-pass rule visitor for one module."""

    def __init__(
        self,
        info: ModuleInfo,
        index: ProjectIndex,
        hot_classes: frozenset[str],
        hot_functions: frozenset[str],
        batch_functions: frozenset[str] = frozenset(),
    ) -> None:
        self.info = info
        self.index = index
        self.hot_classes = hot_classes
        self.hot_functions = hot_functions
        self.batch_functions = batch_functions
        self.findings: list[Finding] = []
        self.sim_scope = _in_sim_scope(info.module)
        self.annotated_scope = _in_annotated_scope(info.module)
        self.policy_scope = _in_policy_scope(info.module)
        self.is_rng_module = info.module == RNG_MODULE
        #: Enclosing ClassDef qualnames, innermost last.
        self._class_stack: list[str] = []
        #: Enclosing function names, innermost last.
        self._func_stack: list[str] = []
        #: Depth of enclosing hot-path functions (H203 active when > 0).
        self._hot_depth = 0
        #: Depth of enclosing batched tick-loop functions (H204 active
        #: when > 0).
        self._batch_depth = 0
        #: Depth of enclosing Raise statements (f-strings exempt inside).
        self._raise_depth = 0
        #: Slot unions of enclosing slotted classes (None = H202 off).
        self._slots_stack: list[Optional[frozenset[str]]] = []

    # ------------------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        # A noqa anywhere on a multi-line *statement* suppresses its
        # findings; compound bodies (def/class/if/...) must not let the
        # span swallow nested code, so they keep a single-line span.
        end_line = getattr(node, "end_lineno", None) or line
        if hasattr(node, "body"):
            end_line = line
        self.findings.append(
            Finding(
                rule=rule,
                path=self.info.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                end_line=end_line,
            )
        )

    def _qualname(self, name: str) -> str:
        prefix = ".".join(self._class_stack + self._func_stack)
        if prefix:
            return f"{self.info.module}.{prefix}.{name}"
        return f"{self.info.module}.{name}"

    # ------------------------------------------------------------------
    # Imports: D101 / D102
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if not self.is_rng_module:
            for alias in node.names:
                root = alias.name.partition(".")[0]
                if root == "random":
                    self._emit(
                        "D101",
                        node,
                        "import random: draw from repro.common.rng "
                        "substreams instead",
                    )
                elif alias.name.startswith("numpy.random"):
                    self._emit(
                        "D102",
                        node,
                        "import numpy.random: use repro.common.rng.make_rng",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.is_rng_module and node.module is not None:
            if node.module == "random" or node.module.startswith("random."):
                self._emit(
                    "D101",
                    node,
                    "from random import ...: draw from repro.common.rng "
                    "substreams instead",
                )
            elif node.module.startswith("numpy.random") or (
                node.module == "numpy"
                and any(alias.name == "random" for alias in node.names)
            ):
                self._emit(
                    "D102",
                    node,
                    "numpy.random import: use repro.common.rng.make_rng",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Calls: D102 / D103 / H203 (logging, print)
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = resolve_dotted(self.info, node.func)
        if resolved is not None:
            if not self.is_rng_module and (
                resolved.startswith("numpy.random.")
                or resolved.startswith("np.random.")
            ):
                self._emit(
                    "D102",
                    node,
                    f"{resolved}: use repro.common.rng.make_rng for a "
                    "seeded substream",
                )
            if self.sim_scope and resolved in _CLOCK_CALLS:
                self._emit(
                    "D103",
                    node,
                    f"{resolved}() in a simulation module: results must "
                    "be a function of (spec, seed) only",
                )
            if self._hot_depth > 0:
                if resolved == "print" or resolved.startswith("logging."):
                    self._emit(
                        "H203",
                        node,
                        f"{resolved}() call inside a hot-path function",
                    )
            if self._batch_depth > 0 and self._raise_depth == 0:
                if resolved in _BATCH_ALLOC_CALLS:
                    self._emit(
                        "H204",
                        node,
                        f"{resolved}() allocates inside a batched tick "
                        "loop: reuse preallocated SoA state instead",
                    )
                elif (
                    resolved in self.index.classes
                    or f"{self.info.module}.{resolved}"
                    in self.index.classes
                ):
                    self._emit(
                        "H204",
                        node,
                        f"{resolved} constructed inside a batched tick "
                        "loop: per-request objects defeat the columnar "
                        "layout",
                    )
            if (
                not self.policy_scope
                and resolved.rsplit(".", 1)[-1] in _POLICY_CLASSES
            ):
                self._emit(
                    "C305",
                    node,
                    f"{resolved}() constructed directly: use "
                    "repro.policies.registry.build_policy so axis "
                    "resolution and canonical naming apply",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Iteration: D104
    # ------------------------------------------------------------------
    def _check_set_iteration(self, iterable: ast.expr) -> None:
        if not self.sim_scope:
            return
        is_set = isinstance(iterable, (ast.Set, ast.SetComp))
        if not is_set and isinstance(iterable, ast.Call):
            resolved = resolve_dotted(self.info, iterable.func)
            is_set = resolved in ("set", "frozenset")
        if is_set:
            self._emit(
                "D104",
                iterable,
                "iterating a set: order is hash-dependent; sort it or "
                "use a sequence/dict",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # id()-keyed state: D105
    # ------------------------------------------------------------------
    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.sim_scope and self._is_id_call(node.slice):
            self._emit(
                "D105",
                node,
                "id()-keyed subscript: object addresses vary across runs",
            )
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        if self.sim_scope:
            for key in node.keys:
                if key is not None and self._is_id_call(key):
                    self._emit(
                        "D105",
                        key,
                        "id() as a dict key: object addresses vary "
                        "across runs",
                    )
        self._check_batch_alloc(node, "dict display")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # H204: allocation inside batched tick-loop functions
    # ------------------------------------------------------------------
    def _check_batch_alloc(self, node: ast.AST, what: str) -> None:
        if self._batch_depth > 0 and self._raise_depth == 0:
            self._emit(
                "H204",
                node,
                f"{what} inside a batched tick loop: the SoA fast path "
                "must not allocate per request",
            )

    def visit_List(self, node: ast.List) -> None:
        if not isinstance(node.ctx, ast.Store):
            self._check_batch_alloc(node, "list display")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._check_batch_alloc(node, "set display")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_batch_alloc(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_batch_alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_batch_alloc(node, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_batch_alloc(node, "generator expression")
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_batch_alloc(node, "lambda (allocates a closure)")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Classes: H201 / H202 context
    # ------------------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = ".".join(self._class_stack + [node.name])
        qualified = f"{self.info.module}.{qualname}"
        cls: Optional[ClassInfo] = self.info.classes.get(qualname)
        if qualified in self.hot_classes:
            if cls is None or cls.slots is None:
                self._emit(
                    "H201",
                    node,
                    f"{qualified} is on the hot-path manifest but does "
                    "not declare __slots__",
                )
        slots_union: Optional[frozenset[str]] = None
        if cls is not None and cls.slots is not None and cls.slots_exact:
            slots_union = self.index.slots_union(qualified)
        self._class_stack.append(node.name)
        self._slots_stack.append(slots_union)
        funcs = self._func_stack
        self._func_stack = []
        self.generic_visit(node)
        self._func_stack = funcs
        self._slots_stack.pop()
        self._class_stack.pop()

    def _check_self_assignment(self, target: ast.expr) -> None:
        if not self._slots_stack or self._slots_stack[-1] is None:
            return
        if not self._func_stack:
            return
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        if target.attr in self._slots_stack[-1]:
            return
        self._emit(
            "H202",
            target,
            f"self.{target.attr} assigned on a slotted class but absent "
            "from __slots__",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._check_self_assignment(element)
            else:
                self._check_self_assignment(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # The annotation subtree is skipped: under ``from __future__
        # import annotations`` it never evaluates, so e.g. the ``[int]``
        # in ``Callable[[int], None]`` is not an allocation (H204).
        self._check_self_assignment(node.target)
        self.visit(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_self_assignment(node.target)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Functions: C302 / C304 and H203 context
    # ------------------------------------------------------------------
    def _check_mutable_defaults(self, node: ast.FunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            )
            if not bad and isinstance(default, ast.Call):
                resolved = resolve_dotted(self.info, default.func)
                bad = resolved in ("list", "dict", "set", "bytearray")
            if bad:
                self._emit(
                    "C302",
                    default,
                    "mutable default argument: use None and create "
                    "inside the function",
                )

    def _check_annotations(self, node: ast.FunctionDef) -> None:
        if not self.annotated_scope or self._func_stack:
            return  # nested functions are implementation detail
        if node.name.startswith("_"):
            return
        if self._class_stack and any(
            name.startswith("_") for name in self._class_stack
        ):
            return  # private class: not public API
        args = node.args
        positional = args.posonlyargs + args.args
        if self._class_stack and positional:
            has_staticmethod = any(
                isinstance(d, ast.Name) and d.id == "staticmethod"
                for d in node.decorator_list
            )
            if not has_staticmethod:
                positional = positional[1:]  # self / cls
        missing = [
            arg.arg
            for arg in positional + args.kwonlyargs
            if arg.annotation is None
        ]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if missing:
            self._emit(
                "C304",
                node,
                f"public function {node.name}() missing parameter "
                f"annotations: {', '.join(missing)}",
            )
        if node.returns is None:
            self._emit(
                "C304",
                node,
                f"public function {node.name}() missing a return "
                "annotation",
            )

    def _visit_function(self, node: ast.FunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._check_annotations(node)
        qualified = self._qualname(node.name)
        is_hot = qualified in self.hot_functions
        is_batch = qualified in self.batch_functions
        if self._batch_depth > 0 and not is_batch:
            self._emit(
                "H204",
                node,
                f"nested function {node.name}() inside a batched tick "
                "loop allocates a function object per call",
            )
        if is_hot:
            self._hot_depth += 1
        if is_batch:
            self._batch_depth += 1
        self._func_stack.append(node.name)
        # Visit children selectively: parameter/return annotations never
        # evaluate at runtime (future annotations), so their subtrees
        # must not trip allocation rules like H204.
        for decorator in node.decorator_list:
            self.visit(decorator)
        for default in node.args.defaults:
            self.visit(default)
        for default in node.args.kw_defaults:
            if default is not None:
                self.visit(default)
        for statement in node.body:
            self.visit(statement)
        self._func_stack.pop()
        if is_batch:
            self._batch_depth -= 1
        if is_hot:
            self._hot_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # H203: try/except and f-strings inside hot functions
    # ------------------------------------------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        if self._hot_depth > 0:
            self._emit(
                "H203",
                node,
                "try/except inside a hot-path function (zero-cost only "
                "until it isn't: keep error handling off the event loop)",
            )
        for handler in node.handlers:
            if handler.type is None:
                self._emit(
                    "C301",
                    handler,
                    "bare except: catch a specific exception type",
                )
            elif self._handler_is_broad(handler.type) and not any(
                isinstance(child, ast.Raise)
                for statement in handler.body
                for child in ast.walk(statement)
            ):
                self._emit(
                    "C306",
                    handler,
                    "except Exception swallows the error: re-raise, "
                    "convert to a ReproError, or justify with "
                    "`# repro: noqa[C306]`",
                )
        self.generic_visit(node)

    def _handler_is_broad(self, type_node: ast.expr) -> bool:
        """Whether a handler type names Exception/BaseException (C306),
        including anywhere inside a tuple of types."""
        if isinstance(type_node, ast.Tuple):
            return any(self._handler_is_broad(e) for e in type_node.elts)
        resolved = resolve_dotted(self.info, type_node)
        return resolved in ("Exception", "BaseException")

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if self._hot_depth > 0 and self._raise_depth == 0:
            self._emit(
                "H203",
                node,
                "f-string on the hot path: formatting per event is pure "
                "overhead (f-strings inside raise are exempt)",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # C303: exception pedigree
    # ------------------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        target: Optional[ast.expr] = None
        if isinstance(exc, ast.Call):
            target = exc.func
        elif isinstance(exc, (ast.Name, ast.Attribute)):
            target = exc
        if target is not None:
            resolved = resolve_dotted(self.info, target)
            if resolved is not None:
                self._check_raise_target(node, resolved)
        self._raise_depth += 1
        self.generic_visit(node)
        self._raise_depth -= 1

    def _check_raise_target(self, node: ast.Raise, resolved: str) -> None:
        # Local bare names may be module classes or re-raised variables.
        candidates = []
        if "." not in resolved:
            candidates.append(f"{self.info.module}.{resolved}")
        candidates.append(resolved)
        for candidate in candidates:
            if candidate in self.index.classes:
                if not self.index.derives_from_repro_error(candidate):
                    self._emit(
                        "C303",
                        node,
                        f"{resolved} does not derive from ReproError "
                        "(repro.common.errors)",
                    )
                return
        if resolved in _BANNED_BUILTIN_RAISES:
            self._emit(
                "C303",
                node,
                f"raise {resolved}: use a ReproError subclass (mix the "
                "builtin in for compatibility if callers expect it)",
            )


def check_module(
    info: ModuleInfo,
    index: ProjectIndex,
    hot_classes: frozenset[str],
    hot_functions: frozenset[str],
    batch_functions: frozenset[str] = frozenset(),
) -> list[Finding]:
    """All findings for one parsed module (suppressions not yet applied)."""
    checker = _Checker(
        info, index, hot_classes, hot_functions, batch_functions
    )
    checker.visit(info.tree)
    return checker.findings


def check_manifest(
    index: ProjectIndex,
    hot_classes: frozenset[str],
    hot_functions: frozenset[str],
) -> list[Finding]:
    """H200: every manifest entry whose module was linted must resolve.

    Entries in modules outside the linted set are skipped, so linting a
    subtree (or the fixture suite) never trips on the full manifest.
    """
    findings = []
    for entry in sorted(hot_classes | hot_functions):
        module_name, _, _symbol = entry.rpartition(".")
        # Method entries qualify module.Class.method; walk up until a
        # linted module matches.
        probe = entry
        info = None
        depth = 0
        while "." in probe:
            probe, _, _ = probe.rpartition(".")
            depth += 1
            info = index.modules.get(probe)
            if info is not None:
                break
        if info is None:
            continue
        qualname = entry[len(info.module) + 1 :]
        if qualname in info.classes:
            continue
        if entry in info.functions:
            continue
        if depth > 1 and qualname.split(".")[0] not in info.classes:
            # The qualname head may be an unlinted submodule (subset or
            # --changed runs lint packages without their children): the
            # entry cannot be proven stale, so stay silent.
            continue
        findings.append(
            Finding(
                rule="H200",
                path=info.path,
                line=1,
                col=1,
                message=f"hot-path manifest entry {entry!r} does not "
                "resolve to a class or function in this module",
            )
        )
    return findings
