"""Flow-sensitive determinism taint analysis (rules D110/D111/D112).

Layered on :mod:`repro.lint.cfg`'s per-function control-flow graphs,
this module provides the generic :class:`ForwardDataflow` worklist
framework plus its main client: a taint analysis that tracks
nondeterministic values (wall clocks, unseeded RNG, environment,
``id()``, set-iteration order) through assignments, augmented ops,
returns, and one level of intra-package calls, and reports when such a
value reaches simulation state.  The syntactic D1xx rules flag the
*call sites* of forbidden APIs; these rules flag the *dataflow* the
call sites feed — aliased handles, helper-routed values, order-tainted
containers — with a full source→sink trace on every finding.

Rules:

* **D110** — a value derived from a nondeterministic source reaches
  simulation state (attribute/subscript store, or a mutator call on an
  attribute receiver) within the function that produced it.
* **D111** — a nondeterministic callable is aliased into a local name
  (or a module alias) and invoked in a simulation module; the direct
  call spelling stays D103's job.
* **D112** — the taint crossed a call boundary (helper return value or
  parameter flow-through, via cross-file call summaries) before
  reaching the sink.

The taint lattice, source/sink catalogue, and termination argument are
documented in DESIGN.md §16.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.lint.cfg import CFG, Element, build_cfg
from repro.lint.engine import (
    Finding,
    ModuleInfo,
    ProjectIndex,
    TraceStep,
    resolve_dotted,
)
from repro.lint.rules import RNG_MODULE, _CLOCK_CALLS, _in_sim_scope

# ----------------------------------------------------------------------
# Generic forward-dataflow framework
# ----------------------------------------------------------------------

#: Safety valve: a block may be re-processed at most this many times
#: before the analysis gives up on the function (soundness over hangs).
_MAX_BLOCK_VISITS = 64


class ForwardDataflow:
    """Worklist iteration to fixpoint over a :class:`~repro.lint.cfg.CFG`.

    Subclasses provide the lattice: :meth:`initial` (entry state),
    :meth:`copy`, :meth:`join` (may-union of predecessor out-states),
    :meth:`equal` (fixpoint test), and :meth:`transfer` (the gen/kill
    effect of one CFG element, mutating the state in place).
    """

    def initial(self) -> dict[str, object]:
        raise NotImplementedError

    def copy(self, state: dict[str, object]) -> dict[str, object]:
        raise NotImplementedError

    def join(
        self, into: dict[str, object], other: dict[str, object]
    ) -> dict[str, object]:
        raise NotImplementedError

    def equal(self, a: dict[str, object], b: dict[str, object]) -> bool:
        raise NotImplementedError

    def transfer(self, element: Element, state: dict[str, object]) -> None:
        raise NotImplementedError

    def run(self, cfg: CFG) -> dict[int, dict[str, object]]:
        """Iterate to fixpoint; returns the in-state of each visited block."""
        in_states: dict[int, dict[str, object]] = {cfg.entry: self.initial()}
        work: deque[int] = deque([cfg.entry])
        visits: dict[int, int] = {}
        while work:
            index = work.popleft()
            visits[index] = visits.get(index, 0) + 1
            if visits[index] > _MAX_BLOCK_VISITS:
                continue
            state = self.copy(in_states[index])
            for element in cfg.blocks[index].elements:
                self.transfer(element, state)
            for succ in cfg.blocks[index].succs:
                existing = in_states.get(succ)
                if existing is None:
                    in_states[succ] = self.copy(state)
                    work.append(succ)
                else:
                    joined = self.join(existing, state)
                    if not self.equal(joined, existing):
                        in_states[succ] = joined
                        work.append(succ)
        return in_states


# ----------------------------------------------------------------------
# Taint lattice
# ----------------------------------------------------------------------

#: Trace length cap: enough to read, bounded so loops cannot grow them.
_MAX_STEPS = 8

#: Kind priority when merging (lower wins): a concrete nondeterministic
#: value beats an order hazard beats a parameter flow beats a set object
#: beats an un-invoked callable reference.
_KIND_RANK = {"value": 0, "order": 1, "param": 2, "set": 3, "callable": 4}


@dataclass(frozen=True, slots=True)
class Taint:
    """One taint tag: where nondeterminism entered, and how it travelled.

    ``kind``:

    * ``value`` — a concrete nondeterministic value (clock read, RNG
      draw, environment lookup, ``id()``);
    * ``order`` — a deterministic set of values in nondeterministic
      order (materialized set iteration);
    * ``callable`` — a reference to a nondeterministic callable that has
      not been invoked yet (``clock = time.time``);
    * ``set`` — a set object (iterating it mints ``order`` taint);
    * ``param`` — summary-collection marker: the value of parameter
      ``param`` (pass 1 only, never reported).

    ``steps`` is presentation-only: :meth:`key` ignores it, so the
    fixpoint compares taint *identity* and loops terminate even though
    traces grow while a tag propagates.
    """

    kind: str
    source: str
    path: str
    line: int
    crossed: bool = False
    param: int = -1
    steps: tuple[TraceStep, ...] = ()

    def key(self) -> tuple[str, str, str, int, bool, int]:
        return (
            self.kind,
            self.source,
            self.path,
            self.line,
            self.crossed,
            self.param,
        )

    def with_step(self, path: str, line: int, note: str) -> "Taint":
        if len(self.steps) >= _MAX_STEPS:
            return self
        return replace(self, steps=self.steps + (TraceStep(path, line, note),))


@dataclass(frozen=True, slots=True)
class FunctionSummary:
    """What a call to this function does to taint (one level deep).

    ``returns`` is the taint of the return value when the function
    itself mints nondeterminism; ``param_flows`` lists parameter indices
    (``self`` excluded for methods) whose taint flows to the return
    value unchanged.
    """

    returns: Optional[Taint] = None
    param_flows: frozenset[int] = frozenset()


# ----------------------------------------------------------------------
# Source / sink catalogue
# ----------------------------------------------------------------------
_SOURCE_PREFIXES = (
    "random.",
    "numpy.random.",
    "np.random.",
    "secrets.",
    "os.environ.",
)
_SOURCE_EXACT = frozenset(
    {
        "id",
        "os.urandom",
        "os.getrandom",
        "os.getenv",
        "os.environ",
        "uuid.uuid1",
        "uuid.uuid4",
    }
) | frozenset(_CLOCK_CALLS)
#: Module objects whose attribute lookups yield nondeterministic callables.
_MODULE_SOURCES = frozenset({"random", "numpy.random", "np.random", "secrets"})
#: Builtins that erase iteration-order taint (but never entropy taint).
_ORDER_NEUTRAL = frozenset({"sorted", "len", "min", "max", "sum"})
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
#: Constructors that materialize their argument's iteration order.
_SEQ_CONSTRUCTORS = frozenset({"list", "tuple"})
#: Mutator methods that count as state-sinks on attribute receivers.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "setdefault",
        "update",
        "push",
        "schedule",
        "schedule_now",
    }
)


def _is_source(resolved: str) -> bool:
    return resolved in _SOURCE_EXACT or any(
        resolved.startswith(prefix) for prefix in _SOURCE_PREFIXES
    )


# ----------------------------------------------------------------------
# The taint analysis
# ----------------------------------------------------------------------
class _TaintAnalysis(ForwardDataflow):
    """One function's taint pass.

    Pass 1 (``collect=True``) seeds parameters with ``param`` taint and
    records return-value taint into a :class:`FunctionSummary`; it never
    reports.  Pass 2 consults the pass-1 summaries (exactly one level of
    inter-procedural propagation) and reports sinks.
    """

    def __init__(
        self,
        info: ModuleInfo,
        index: ProjectIndex,
        qualname: str,
        func: ast.FunctionDef,
        summaries: Optional[dict[str, FunctionSummary]],
        collect: bool,
    ) -> None:
        self.info = info
        self.index = index
        self.qualname = qualname
        self.func = func
        self.summaries = summaries or {}
        self.collect = collect
        self.sim = _in_sim_scope(info.module)
        self.findings: list[Finding] = []
        self.return_taints: list[Taint] = []
        self._emitted: set[tuple[str, int, int, str]] = set()
        self.assigned = self._assigned_names()
        # Method context: the enclosing class's qualname, if any, so
        # ``self.helper()`` resolves to a project summary.
        local = qualname[len(info.module) + 1 :]
        self.class_prefix: Optional[str] = None
        if "." in local:
            prefix = local.rsplit(".", 1)[0]
            if prefix in info.classes:
                self.class_prefix = prefix

    # -- setup ---------------------------------------------------------
    def _assigned_names(self) -> frozenset[str]:
        """Every name the function binds (kills global resolution)."""
        names: set[str] = set()
        args = self.func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            names.add(arg.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        for node in ast.walk(self.func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif (
                isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and node is not self.func
            ):
                names.add(node.name)
        return frozenset(names)

    def _call_params(self) -> list[str]:
        """Positional parameter names as a *caller* counts them."""
        args = self.func.args
        params = [arg.arg for arg in args.posonlyargs + args.args]
        if (
            self.class_prefix is not None
            and params
            and params[0] in ("self", "cls")
        ):
            params = params[1:]
        return params

    # -- lattice -------------------------------------------------------
    def initial(self) -> dict[str, Taint]:  # type: ignore[override]
        state: dict[str, Taint] = {}
        if self.collect:
            for position, name in enumerate(self._call_params()):
                state[name] = Taint(
                    kind="param",
                    source=f"parameter {name!r}",
                    path=self.info.path,
                    line=self.func.lineno,
                    param=position,
                )
        return state

    def copy(self, state: dict[str, Taint]) -> dict[str, Taint]:  # type: ignore[override]
        return dict(state)

    def join(  # type: ignore[override]
        self, into: dict[str, Taint], other: dict[str, Taint]
    ) -> dict[str, Taint]:
        joined = dict(into)
        for name, taint in other.items():
            existing = joined.get(name)
            if existing is None:
                joined[name] = taint
            elif taint.key() != existing.key() and self._rank(
                taint
            ) < self._rank(existing):
                joined[name] = taint
        return joined

    @staticmethod
    def _rank(taint: Taint) -> tuple[int, str, str, int, bool, int]:
        return (_KIND_RANK.get(taint.kind, 9),) + taint.key()[1:]  # type: ignore[return-value]

    def equal(  # type: ignore[override]
        self, a: dict[str, Taint], b: dict[str, Taint]
    ) -> bool:
        if a.keys() != b.keys():
            return False
        return all(a[name].key() == b[name].key() for name in a)

    @staticmethod
    def _merge(*taints: Optional[Taint]) -> Optional[Taint]:
        """The dominant taint of a multi-operand expression."""
        best: Optional[Taint] = None
        for taint in taints:
            if taint is None:
                continue
            if best is None or _TaintAnalysis._rank(
                taint
            ) < _TaintAnalysis._rank(best):
                best = taint
        return best

    # -- transfer ------------------------------------------------------
    def transfer(self, element: Element, state: dict[str, Taint]) -> None:  # type: ignore[override]
        if isinstance(element, ast.Assign):
            value = self._expr(element.value, state)
            for target in element.targets:
                self._bind(target, element.value, value, state, element)
        elif isinstance(element, ast.AnnAssign):
            if element.value is not None:
                value = self._expr(element.value, state)
                self._bind(element.target, element.value, value, state, element)
        elif isinstance(element, ast.AugAssign):
            value = self._expr(element.value, state)
            if isinstance(element.target, ast.Name):
                taint = self._merge(value, state.get(element.target.id))
                if taint is not None:
                    self._bind_name(element.target.id, taint, state, element)
            elif value is not None:
                self._store_sink(element.target, value, element)
        elif isinstance(element, ast.Return):
            if element.value is not None:
                taint = self._expr(element.value, state)
                if taint is not None and self.collect:
                    self.return_taints.append(taint)
        elif isinstance(element, ast.Raise):
            self._expr(element.exc, state)
            self._expr(element.cause, state)
        elif isinstance(element, ast.Assert):
            self._expr(element.test, state)
            self._expr(element.msg, state)
        elif isinstance(element, ast.Expr):
            self._expr(element.value, state)
        elif isinstance(element, ast.Delete):
            for target in element.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
        elif isinstance(element, (ast.For, ast.AsyncFor)):
            iter_taint = self._expr(element.iter, state)
            bind: Optional[Taint] = None
            if iter_taint is not None:
                if iter_taint.kind == "set":
                    bind = Taint(
                        kind="order",
                        source=f"iteration order of {iter_taint.source}",
                        path=self.info.path,
                        line=element.lineno,
                        crossed=iter_taint.crossed,
                        steps=iter_taint.steps
                        + (
                            TraceStep(
                                self.info.path,
                                element.lineno,
                                "iterated here: element order is "
                                "nondeterministic",
                            ),
                        ),
                    )
                elif iter_taint.kind in ("value", "order", "param"):
                    bind = iter_taint
            self._bind(element.target, None, bind, state, element)
        elif isinstance(element, (ast.With, ast.AsyncWith)):
            for item in element.items:
                taint = self._expr(item.context_expr, state)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, taint, state, element)
        elif isinstance(
            element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            state.pop(element.name, None)
        elif isinstance(element, ast.expr):
            self._expr(element, state)
        # Import/Global/Nonlocal/Pass: no taint effect.

    # -- binding -------------------------------------------------------
    def _bind(
        self,
        target: ast.expr,
        value_expr: Optional[ast.expr],
        taint: Optional[Taint],
        state: dict[str, Taint],
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target.id, taint, state, stmt)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, taint, state, stmt)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
                value_expr.elts
            ) == len(target.elts):
                for element, source in zip(target.elts, value_expr.elts):
                    self._bind(
                        element, source, self._expr(source, state), state, stmt
                    )
            else:
                for element in target.elts:
                    self._bind(element, None, taint, state, stmt)
        elif isinstance(target, ast.Subscript):
            slice_taint = self._expr(target.slice, state)
            sink = self._merge(taint, slice_taint)
            if sink is not None:
                self._store_sink(target, sink, stmt)
        elif isinstance(target, ast.Attribute):
            if taint is not None:
                self._store_sink(target, taint, stmt)

    def _bind_name(
        self,
        name: str,
        taint: Optional[Taint],
        state: dict[str, Taint],
        stmt: ast.stmt,
    ) -> None:
        if taint is None:
            state.pop(name, None)
            return
        existing = state.get(name)
        if existing is not None and existing.key() == taint.key():
            return  # identical tag: keep the established trace
        note = (
            f"aliased as {name!r}"
            if taint.kind == "callable"
            else f"assigned to {name!r}"
        )
        state[name] = taint.with_step(self.info.path, stmt.lineno, note)

    # -- expression evaluation -----------------------------------------
    def _expr(
        self, node: Optional[ast.expr], state: dict[str, Taint]
    ) -> Optional[Taint]:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            taint = state.get(node.id)
            if taint is not None:
                return taint
            if node.id in self.assigned:
                return None
            resolved = resolve_dotted(self.info, node)
            return self._global_taint(resolved, node)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                base = state.get(node.value.id)
                if base is not None:
                    return base  # attribute of a tainted value/module alias
                if node.value.id in self.assigned:
                    return None
                resolved = resolve_dotted(self.info, node)
                return self._global_taint(resolved, node)
            return self._expr(node.value, state)
        if isinstance(node, ast.Call):
            return self._call(node, state)
        if isinstance(node, ast.BinOp):
            return self._merge(
                self._expr(node.left, state), self._expr(node.right, state)
            )
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand, state)
        if isinstance(node, ast.BoolOp):
            return self._merge(*(self._expr(v, state) for v in node.values))
        if isinstance(node, ast.Compare):
            return self._merge(
                self._expr(node.left, state),
                *(self._expr(c, state) for c in node.comparators),
            )
        if isinstance(node, ast.IfExp):
            self._expr(node.test, state)
            return self._merge(
                self._expr(node.body, state), self._expr(node.orelse, state)
            )
        if isinstance(node, ast.Subscript):
            base = self._expr(node.value, state)
            index = self._expr(node.slice, state)
            if base is not None and base.kind == "callable":
                base = replace(base, kind="value")  # e.g. os.environ["X"]
            return self._merge(base, index)
        if isinstance(node, (ast.Tuple, ast.List)):
            return self._merge(*(self._expr(e, state) for e in node.elts))
        if isinstance(node, (ast.Set, ast.SetComp)):
            inner: Optional[Taint]
            if isinstance(node, ast.Set):
                inner = self._merge(*(self._expr(e, state) for e in node.elts))
            else:
                inner = self._merge(
                    *(self._expr(g.iter, state) for g in node.generators)
                )
            if inner is not None and inner.kind in ("value", "param"):
                return inner  # entropy taint dominates order hazards
            return Taint(
                kind="set",
                source="set display",
                path=self.info.path,
                line=node.lineno,
                steps=(
                    TraceStep(self.info.path, node.lineno, "set built here"),
                ),
            )
        if isinstance(node, ast.Dict):
            return self._merge(
                *(self._expr(k, state) for k in node.keys if k is not None),
                *(self._expr(v, state) for v in node.values),
            )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                iter_taint = self._expr(generator.iter, state)
                if iter_taint is None:
                    continue
                if iter_taint.kind == "set":
                    return Taint(
                        kind="order",
                        source=f"iteration order of {iter_taint.source}",
                        path=self.info.path,
                        line=node.lineno,
                        crossed=iter_taint.crossed,
                        steps=iter_taint.steps
                        + (
                            TraceStep(
                                self.info.path,
                                node.lineno,
                                "comprehension iterates it here",
                            ),
                        ),
                    )
                if iter_taint.kind in ("value", "order", "param"):
                    return iter_taint
            return None
        if isinstance(node, ast.Starred):
            return self._expr(node.value, state)
        if isinstance(node, ast.Await):
            return self._expr(node.value, state)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return self._expr(node.value, state)
        if isinstance(node, ast.NamedExpr):
            taint = self._expr(node.value, state)
            self._bind_name(node.target.id, taint, state, _stmt_of(node))
            return taint
        if isinstance(node, ast.JoinedStr):
            return self._merge(*(self._expr(v, state) for v in node.values))
        if isinstance(node, ast.FormattedValue):
            return self._expr(node.value, state)
        return None  # Constant, Lambda, Slice defaults, ...

    def _global_taint(
        self, resolved: Optional[str], node: ast.expr
    ) -> Optional[Taint]:
        """Taint of a bare global reference (not a call)."""
        if resolved is None:
            return None
        if _is_source(resolved) or resolved in _MODULE_SOURCES:
            source = (
                f"{resolved}.*" if resolved in _MODULE_SOURCES else resolved
            )
            return Taint(
                kind="callable",
                source=source,
                path=self.info.path,
                line=node.lineno,
                steps=(
                    TraceStep(
                        self.info.path,
                        node.lineno,
                        f"references nondeterministic source {source}",
                    ),
                ),
            )
        return None

    # -- calls ---------------------------------------------------------
    def _call(self, node: ast.Call, state: dict[str, Taint]) -> Optional[Taint]:
        arg_taints = [self._expr(arg, state) for arg in node.args]
        keyword_taints = [
            self._expr(keyword.value, state) for keyword in node.keywords
        ]
        func = node.func

        # D111: invocation through a taint-carrying alias.
        alias: Optional[Taint] = None
        if isinstance(func, ast.Name):
            alias = state.get(func.id)
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            alias = state.get(func.value.id)
        if alias is not None:
            if alias.kind == "callable":
                self._alias_call(func, alias, node)
                return Taint(
                    kind="value",
                    source=alias.source,
                    path=alias.path,
                    line=alias.line,
                    crossed=alias.crossed,
                    steps=alias.steps
                    + (
                        TraceStep(
                            self.info.path,
                            node.lineno,
                            f"aliased {alias.source} invoked here",
                        ),
                    ),
                )
            if alias.kind in ("value", "order", "param"):
                # Calling a method on a tainted value: result is tainted.
                return alias

        resolved: Optional[str] = None
        if isinstance(func, (ast.Name, ast.Attribute)):
            head: ast.expr = func
            while isinstance(head, ast.Attribute):
                head = head.value
            head_id = head.id if isinstance(head, ast.Name) else None
            if head_id is not None and head_id in ("self", "cls"):
                resolved = None  # handled via the method-summary path
            elif head_id is None or head_id not in self.assigned:
                resolved = resolve_dotted(self.info, func)

        if resolved is not None:
            tail = resolved.rsplit(".", 1)[-1]
            if resolved in _ORDER_NEUTRAL:
                return self._merge(
                    *(
                        taint
                        for taint in arg_taints + keyword_taints
                        if taint is not None
                        and taint.kind in ("value", "param")
                    )
                )
            if resolved in _SET_CONSTRUCTORS:
                inner = self._merge(*arg_taints)
                if inner is not None and inner.kind in ("value", "param"):
                    return inner
                return Taint(
                    kind="set",
                    source=f"{resolved}() contents",
                    path=self.info.path,
                    line=node.lineno,
                    steps=(
                        TraceStep(
                            self.info.path,
                            node.lineno,
                            f"{resolved} built here",
                        ),
                    ),
                )
            if resolved in _SEQ_CONSTRUCTORS:
                inner = self._merge(*arg_taints)
                if inner is None:
                    return None
                if inner.kind == "set":
                    return Taint(
                        kind="order",
                        source=f"iteration order of {inner.source}",
                        path=self.info.path,
                        line=node.lineno,
                        crossed=inner.crossed,
                        steps=inner.steps
                        + (
                            TraceStep(
                                self.info.path,
                                node.lineno,
                                f"materialized by {resolved}() in arbitrary "
                                "set order",
                            ),
                        ),
                    )
                return inner
            if _is_source(resolved):
                return Taint(
                    kind="value",
                    source=f"{resolved}()",
                    path=self.info.path,
                    line=node.lineno,
                    steps=(
                        TraceStep(
                            self.info.path,
                            node.lineno,
                            f"source: call to {resolved}()",
                        ),
                    ),
                )
            if not self.collect:
                candidates = (
                    [resolved]
                    if "." in resolved
                    else [f"{self.info.module}.{resolved}"]
                )
                for qualified in candidates:
                    found, result = self._summary_call(
                        qualified, tail, node, arg_taints
                    )
                    if found:
                        return result

        # self.helper(...) → the enclosing class's summary.
        if (
            not self.collect
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and self.class_prefix is not None
        ):
            qualified = (
                f"{self.info.module}.{self.class_prefix}.{func.attr}"
            )
            found, result = self._summary_call(
                qualified, func.attr, node, arg_taints
            )
            if found:
                return result

        # Mutator-method sink: self.queue.push(tainted), stats.update(...).
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Attribute)
        ):
            tainted_arg = self._merge(
                *(
                    taint
                    for taint in arg_taints + keyword_taints
                    if taint is not None and taint.kind in ("value", "order")
                )
            )
            if tainted_arg is not None:
                self._mutator_sink(func, tainted_arg, node)

        # Unknown callee: a tainted argument conservatively taints the
        # result (str(clock), round(jitter, 3), ...).
        return self._merge(
            *(
                taint
                for taint in arg_taints + keyword_taints
                if taint is not None
                and taint.kind in ("value", "order", "param")
            )
        )

    def _summary_call(
        self,
        qualified: str,
        name: str,
        node: ast.Call,
        arg_taints: Sequence[Optional[Taint]],
    ) -> tuple[bool, Optional[Taint]]:
        """Apply a pass-1 summary; (found, result-taint)."""
        summary = self.summaries.get(qualified)
        if summary is None:
            return False, None
        returned = summary.returns
        if returned is not None:
            return True, replace(
                returned,
                crossed=True,
                steps=returned.steps
                + (
                    TraceStep(
                        self.info.path,
                        node.lineno,
                        f"returned by call to {name}()",
                    ),
                ),
            )
        for position in sorted(summary.param_flows):
            if position < len(arg_taints):
                taint = arg_taints[position]
                if taint is not None and taint.kind in (
                    "value",
                    "order",
                    "callable",
                    "param",
                ):
                    return True, replace(
                        taint,
                        crossed=True,
                        steps=taint.steps
                        + (
                            TraceStep(
                                self.info.path,
                                node.lineno,
                                f"flows through call to {name}()",
                            ),
                        ),
                    )
        return True, None

    # -- reporting -----------------------------------------------------
    def _finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        taint: Taint,
        sink_note: str,
    ) -> None:
        line = getattr(node, "lineno", 1)
        end_line = getattr(node, "end_lineno", None) or line
        if hasattr(node, "body"):
            end_line = line
        key = (rule, line, getattr(node, "col_offset", 0), message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.info.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                end_line=end_line,
                trace=taint.steps
                + (TraceStep(self.info.path, line, sink_note),),
            )
        )

    def _store_sink(
        self, target: ast.expr, taint: Taint, stmt: ast.stmt
    ) -> None:
        if not self.sim or self.collect:
            return
        if taint.kind not in ("value", "order"):
            return
        desc = ast.unparse(target)
        rule = "D112" if taint.crossed else "D110"
        hazard = (
            "nondeterministic iteration order"
            if taint.kind == "order"
            else "a nondeterministic value"
        )
        self._finding(
            rule,
            stmt,
            f"simulation state {desc!r} receives {hazard} derived from "
            f"{taint.source}; route it through a seeded substream "
            f"({RNG_MODULE}) or drop it from simulation state",
            taint,
            f"sink: stored into {desc}",
        )

    def _mutator_sink(
        self, func: ast.Attribute, taint: Taint, node: ast.Call
    ) -> None:
        if not self.sim or self.collect:
            return
        receiver = ast.unparse(func.value)
        rule = "D112" if taint.crossed else "D110"
        self._finding(
            rule,
            node,
            f"simulation state {receiver!r} is mutated via .{func.attr}() "
            f"with an argument derived from {taint.source}; route it "
            f"through a seeded substream ({RNG_MODULE})",
            taint,
            f"sink: {receiver}.{func.attr}(...) called with the tainted "
            "value",
        )

    def _alias_call(
        self, func: ast.expr, alias: Taint, node: ast.Call
    ) -> None:
        if not self.sim or self.collect:
            return
        spelled = ast.unparse(func)
        self._finding(
            "D111",
            node,
            f"call through {spelled!r} invokes nondeterministic source "
            f"{alias.source} via a local alias (bound at line "
            f"{alias.line}); use a seeded substream from {RNG_MODULE}",
            alias,
            "alias invoked here",
        )

    # -- summary extraction --------------------------------------------
    def summarize(self) -> FunctionSummary:
        returns: Optional[Taint] = None
        flows: set[int] = set()
        for taint in self.return_taints:
            if taint.kind == "param":
                flows.add(taint.param)
            elif returns is None or self._rank(taint) < self._rank(returns):
                returns = taint
        return FunctionSummary(returns=returns, param_flows=frozenset(flows))


def _stmt_of(node: ast.expr) -> ast.stmt:
    """A location-carrying stand-in for expression-level bindings."""
    stmt = ast.Pass()
    stmt.lineno = node.lineno
    stmt.col_offset = node.col_offset
    return stmt


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_flow(index: ProjectIndex) -> list[Finding]:
    """Run the D11x determinism-taint analysis over the whole project.

    Pass 1 summarizes every function in the index (so helpers in any
    package can carry taint); pass 2 analyzes and reports only functions
    in simulation-scope modules, where the sinks live.  The sanctioned
    RNG module is exempt — it is the one place allowed to touch entropy.
    """
    summaries: dict[str, FunctionSummary] = {}
    for info in index.modules.values():
        if info.module == RNG_MODULE:
            continue
        for qualified, func in sorted(info.function_nodes.items()):
            analysis = _TaintAnalysis(
                info, index, qualified, func, summaries=None, collect=True
            )
            analysis.run(build_cfg(func))
            summaries[qualified] = analysis.summarize()
    findings: list[Finding] = []
    for info in index.modules.values():
        if info.module == RNG_MODULE or not _in_sim_scope(info.module):
            continue
        for qualified, func in sorted(info.function_nodes.items()):
            analysis = _TaintAnalysis(
                info, index, qualified, func, summaries=summaries, collect=False
            )
            analysis.run(build_cfg(func))
            findings.extend(analysis.findings)
    return findings
