"""Infrastructure for the ``repro.lint`` static-analysis pass.

The engine owns everything that is not a rule: file discovery, module
naming, the two-pass project index (class/base/slots/exception
information that rules resolve across files), ``# repro: noqa``
suppression handling, and finding selection.  The rules themselves live
in :mod:`repro.lint.rules`.

Entry points:

* :func:`lint_paths` — lint files or directory trees on disk.
* :func:`lint_sources` — lint in-memory sources under explicit module
  names (what the fixture tests use).
"""

from __future__ import annotations

import ast
import io
import re
import subprocess
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.common.errors import ReproError
from repro.lint.hotpath import (
    HOT_BATCH_FUNCTIONS,
    HOT_CLASSES,
    HOT_FUNCTIONS,
)


class LintError(ReproError):
    """A lint invocation could not run (bad paths, bad rule selection)."""


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One hop of a dataflow trace (source → propagation → sink)."""

    path: str
    line: int
    note: str


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``end_line`` is the last line of the offending statement (0 when
    unknown); a ``# repro: noqa`` anywhere on the statement's lines
    suppresses the finding, so multi-line statements can carry the
    comment on any of their physical lines.  ``trace`` carries the
    flow-sensitive evidence chain for dataflow rules (D11x/K4xx).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    end_line: int = 0
    trace: tuple[TraceStep, ...] = ()

    def render(self) -> str:
        """The one-line human-readable form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def render_trace(self) -> str:
        """The multi-line form: the finding plus its evidence chain."""
        lines = [self.render()]
        for step in self.trace:
            lines.append(f"    {step.path}:{step.line}: {step.note}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """The machine-readable (``--format=json``) form."""
        payload: dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.trace:
            payload["trace"] = [
                {"path": s.path, "line": s.line, "note": s.note}
                for s in self.trace
            ]
        return payload


@dataclass(slots=True)
class ClassInfo:
    """What the cross-file index records about one class definition."""

    module: str
    qualname: str
    lineno: int
    #: Base-class expressions resolved to dotted names where possible.
    bases: tuple[str, ...]
    #: Explicit ``__slots__`` names, or dataclass field names under
    #: ``@dataclass(slots=True)``; None when the class is unslotted.
    slots: Optional[tuple[str, ...]]
    #: True when ``slots`` is authoritative (an explicit literal tuple or
    #: a slots dataclass); False when ``__slots__`` exists but could not
    #: be parsed statically.
    slots_exact: bool
    #: Dataclass-style annotated fields: name -> resolved annotation
    #: dotted name (None when the annotation is not a plain name chain).
    #: Empty for classes with no annotated assignments.
    fields: dict[str, Optional[str]] = field(default_factory=dict)
    #: The class definition node (for whole-project passes that need to
    #: inspect method bodies, e.g. the K4xx cache-key analysis).
    node: Optional[ast.ClassDef] = None

    @property
    def qualified(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass(slots=True)
class ModuleInfo:
    """Per-module facts shared by the rules."""

    module: str
    path: str
    tree: ast.Module
    source: str
    #: Local name -> dotted target for every import in the module.
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Qualified names of every function/method defined in the module.
    functions: set[str] = field(default_factory=set)
    #: Qualified name -> definition node for every function/method (the
    #: call-summary substrate of the flow analyses).
    function_nodes: dict[str, ast.FunctionDef] = field(default_factory=dict)


class ProjectIndex:
    """Cross-file class/exception/slots knowledge for one lint run."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._repro_error_cache: dict[str, bool] = {}

    # ------------------------------------------------------------------
    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.module] = info
        for cls in info.classes.values():
            self.classes[cls.qualified] = cls

    # ------------------------------------------------------------------
    def derives_from_repro_error(self, qualified: str) -> bool:
        """Whether the indexed class reaches ``ReproError`` via bases."""
        cached = self._repro_error_cache.get(qualified)
        if cached is not None:
            return cached
        self._repro_error_cache[qualified] = False  # cycle guard
        result = self._walk_repro_error(qualified, set())
        self._repro_error_cache[qualified] = result
        return result

    def _walk_repro_error(self, qualified: str, seen: set[str]) -> bool:
        if qualified in seen:
            return False
        seen.add(qualified)
        cls = self.classes.get(qualified)
        if cls is None:
            # Unindexed (external) base: only the canonical root counts.
            return qualified.rsplit(".", 1)[-1] == "ReproError"
        for base in cls.bases:
            if base.rsplit(".", 1)[-1] == "ReproError":
                return True
            if self._walk_repro_error(base, seen):
                return True
        return False

    # ------------------------------------------------------------------
    def slots_union(self, qualified: str) -> Optional[frozenset[str]]:
        """Every legal instance attribute of a fully slotted class.

        Returns None when the attribute set cannot be known exactly —
        the class (or an ancestor) is unslotted, has an unparseable
        ``__slots__``, or an ancestor is outside the linted tree — in
        which case H202 stays silent for the class.
        """
        names: set[str] = set()
        stack = [qualified]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                return None  # external ancestor: unknown attribute set
            if cls.slots is None or not cls.slots_exact:
                return None
            names.update(cls.slots)
            stack.extend(cls.bases)
        return frozenset(names)


# ----------------------------------------------------------------------
# Source scanning: imports, classes, suppressions
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_dotted(module: ModuleInfo, node: ast.expr) -> Optional[str]:
    """Resolve a Name/Attribute chain through the module's imports.

    ``np.random.default_rng`` becomes ``numpy.random.default_rng`` when
    the module did ``import numpy as np``; unimported heads resolve to
    themselves (locals, builtins).
    """
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    target = module.imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _literal_str_tuple(node: ast.expr) -> tuple[Optional[tuple[str, ...]], bool]:
    """Parse a ``__slots__`` value; (names, exact)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value,), True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        names = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None, False
            names.append(element.value)
        return tuple(names), True
    return None, False


def _dataclass_slots(node: ast.ClassDef, module: ModuleInfo) -> Optional[bool]:
    """None when not a dataclass; else whether ``slots=True`` was passed."""
    for decorator in node.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        target = call.func if call is not None else decorator
        resolved = resolve_dotted(module, target)
        if resolved in ("dataclasses.dataclass", "dataclass"):
            if call is not None:
                for keyword in call.keywords:
                    if keyword.arg == "slots":
                        value = keyword.value
                        return (
                            isinstance(value, ast.Constant)
                            and value.value is True
                        )
            return False
    return None


def _dataclass_field_names(node: ast.ClassDef) -> tuple[str, ...]:
    names = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            names.append(statement.target.id)
    return tuple(names)


def _annotated_fields(
    node: ast.ClassDef, module: ModuleInfo
) -> dict[str, Optional[str]]:
    """Annotated class-body assignments: name -> resolved annotation.

    ``ClassVar`` annotations are skipped — they are class constants, not
    dataclass fields, so the K4xx field walk must not count them.
    """
    fields: dict[str, Optional[str]] = {}
    for statement in node.body:
        if not (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
        ):
            continue
        annotation = statement.annotation
        dotted = _dotted(annotation)
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "ClassVar":
            continue
        if (
            isinstance(annotation, ast.Subscript)
            and (_dotted(annotation.value) or "").rsplit(".", 1)[-1]
            == "ClassVar"
        ):
            continue
        resolved = (
            resolve_dotted(module, annotation)
            if isinstance(annotation, (ast.Name, ast.Attribute))
            else None
        )
        fields[statement.target.id] = resolved
    return fields


def _collect_classes(module: ModuleInfo) -> None:
    """Record every class (and function qualname) defined in the module."""

    def visit(body: Sequence[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                qualname = f"{prefix}{node.name}"
                # Bases resolve through imports here; bare names that
                # turn out to be local classes are qualified in the
                # second pass below (they may be defined later).
                bases = [
                    resolved
                    for resolved in (
                        resolve_dotted(module, base) for base in node.bases
                    )
                    if resolved is not None
                ]
                slots: Optional[tuple[str, ...]] = None
                exact = False
                dc_slots = _dataclass_slots(node, module)
                if dc_slots:
                    slots = _dataclass_field_names(node)
                    exact = True
                for statement in node.body:
                    if (
                        isinstance(statement, ast.Assign)
                        and len(statement.targets) == 1
                        and isinstance(statement.targets[0], ast.Name)
                        and statement.targets[0].id == "__slots__"
                    ):
                        slots, exact = _literal_str_tuple(statement.value)
                        if slots is None:
                            slots, exact = (), False
                module.classes[qualname] = ClassInfo(
                    module=module.module,
                    qualname=qualname,
                    lineno=node.lineno,
                    bases=tuple(bases),
                    slots=slots,
                    slots_exact=exact,
                    fields=_annotated_fields(node, module),
                    node=node,
                )
                visit(node.body, f"{qualname}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualified = f"{module.module}.{prefix}{node.name}"
                module.functions.add(qualified)
                if isinstance(node, ast.FunctionDef):
                    module.function_nodes[qualified] = node
                visit(node.body, f"{prefix}{node.name}.")

    visit(module.tree.body, "")
    # Second pass over bases: qualify bare names that name local classes.
    local = set(module.classes)
    for cls in module.classes.values():
        cls.bases = tuple(
            f"{module.module}.{base}" if base in local else base
            for base in cls.bases
        )


_NOQA_LINE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)
_NOQA_FILE = re.compile(
    r"#\s*repro:\s*noqa-file\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
)


@dataclass(slots=True)
class Suppressions:
    """Parsed ``# repro: noqa`` state for one file.

    ``suppressed`` records which comments actually matched a finding, so
    the engine can report stale suppressions afterwards (rule W001,
    ``--show-unused-noqa``).
    """

    #: line -> None (blanket) or set of rule ids.
    lines: dict[int, Optional[frozenset[str]]]
    #: Rule id suppressed for the whole file -> lineno of its comment.
    file_rules: dict[str, int]
    #: Keys of comments that matched at least one finding: line numbers
    #: for line comments, ``("file", rule)`` for file-level ones.
    used: set[object] = field(default_factory=set)

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_rules:
            self.used.add(("file", finding.rule))
            return True
        last = max(finding.line, finding.end_line or 0)
        for lineno in range(finding.line, last + 1):
            rules = self.lines.get(lineno, _NO_ENTRY)
            if rules is _NO_ENTRY:
                continue
            if rules is None or finding.rule in rules:  # type: ignore[operator]
                self.used.add(lineno)
                return True
        return False

    def unused(self) -> list[tuple[int, str]]:
        """``(lineno, description)`` for comments that matched nothing."""
        stale: list[tuple[int, str]] = []
        for lineno in self.lines:
            if lineno in self.used:
                continue
            rules = self.lines[lineno]
            description = (
                "blanket `# repro: noqa`"
                if rules is None
                else f"`# repro: noqa[{','.join(sorted(rules))}]`"
            )
            stale.append((lineno, description))
        for rule, lineno in self.file_rules.items():
            if ("file", rule) not in self.used:
                stale.append((lineno, f"`# repro: noqa-file[{rule}]`"))
        stale.sort()
        return stale


#: Sentinel distinguishing "no noqa on this line" from a blanket (None).
_NO_ENTRY: object = object()


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """``(lineno, comment_text)`` for every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps the marker
    inert inside string literals and docstrings — documentation *about*
    ``# repro: noqa`` must neither suppress anything nor show up as a
    stale suppression under W001.
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError, ValueError):
        # Unparseable file (E999 territory): fall back to raw lines so a
        # noqa near the damage still behaves predictably.
        return [
            (lineno, text)
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "#" in text
        ]


def parse_suppressions(source: str) -> Suppressions:
    """Scan a file's comments for line and file-level suppressions."""
    lines: dict[int, Optional[frozenset[str]]] = {}
    file_rules: dict[str, int] = {}
    for lineno, text in _comment_lines(source):
        file_match = _NOQA_FILE.search(text)
        if file_match is not None:
            for rule in file_match.group("rules").split(","):
                if rule.strip():
                    file_rules.setdefault(rule.strip(), lineno)
            continue
        match = _NOQA_LINE.search(text)
        if match is None:
            continue
        raw = match.group("rules")
        if raw is None:
            lines[lineno] = None
        else:
            rules = frozenset(r.strip() for r in raw.split(",") if r.strip())
            previous = lines.get(lineno)
            if previous is None and lineno in lines:
                continue  # blanket already recorded
            lines[lineno] = (
                rules if previous is None else frozenset(previous | rules)
            )
    return Suppressions(lines=lines, file_rules=file_rules)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def _parse_rule_list(raw: Optional[str]) -> Optional[tuple[str, ...]]:
    if raw is None:
        return None
    entries = tuple(part.strip() for part in raw.split(",") if part.strip())
    if not entries:
        return None
    return entries


def rule_selected(
    rule: str,
    select: Optional[tuple[str, ...]],
    ignore: Optional[tuple[str, ...]],
) -> bool:
    """ruff-style prefix selection: ``--select D --ignore D104``."""
    if select is not None and not any(rule.startswith(s) for s in select):
        return False
    if ignore is not None and any(rule.startswith(s) for s in ignore):
        return False
    return True


# ----------------------------------------------------------------------
# Module naming and discovery
# ----------------------------------------------------------------------
def module_name_for(path: Path) -> str:
    """Dotted module name from package ``__init__.py`` nesting."""
    parts: list[str] = []
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if path.name != "__init__.py":
        parts.append(path.stem)
    return ".".join(parts) if parts else path.stem


def discover_files(
    paths: Sequence[Path], exclude: Sequence[Path] = ()
) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``exclude`` prunes whole subtrees (or single files) from the result —
    the CI lint job uses it to keep the deliberately-broken lint
    fixtures out of a ``tests/`` sweep.
    """
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            files.add(path)
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")
    if exclude:
        roots = [e.resolve() for e in exclude]
        files = {
            f
            for f in files
            if not any(
                f.resolve() == root or root in f.resolve().parents
                for root in roots
            )
        }
    return sorted(files)


def changed_files(paths: Sequence[Path]) -> list[Path]:
    """``.py`` files changed vs HEAD (staged, unstaged, and untracked).

    Used by ``profess lint --changed`` (the pre-commit hook); returns
    the intersection with the requested ``paths``.
    """
    try:
        output = subprocess.run(
            # -uall: list files inside untracked directories (the default
            # collapses them to "pkg/", which hides the .py files).
            ["git", "status", "--porcelain", "--untracked-files=all"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as error:
        raise LintError(f"--changed requires a git checkout: {error}") from error
    candidates: list[Path] = []
    for line in output.splitlines():
        if len(line) < 4 or line[:2] == "D " or line[:2] == " D":
            continue
        name = line[3:].split(" -> ")[-1].strip().strip('"')
        if name.endswith(".py"):
            candidates.append(Path(name))
    scope = {file.resolve() for file in discover_files(paths)}
    return sorted(c for c in candidates if c.resolve() in scope)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def _build_module(module: str, path: str, source: str) -> ModuleInfo:
    tree = ast.parse(source, filename=path)
    info = ModuleInfo(module=module, path=path, tree=tree, source=source)
    info.imports = _collect_imports(tree)
    _collect_classes(info)
    return info


def lint_sources(
    sources: dict[str, tuple[str, str]],
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    hot_classes: Optional[frozenset[str]] = None,
    hot_functions: Optional[frozenset[str]] = None,
    batch_functions: Optional[frozenset[str]] = None,
    show_unused_noqa: bool = False,
) -> list[Finding]:
    """Lint in-memory sources: ``{module: (display_path, source)}``."""
    from repro.lint.flow import check_flow
    from repro.lint.keys import check_keys
    from repro.lint.rules import check_manifest, check_module

    select_rules = _parse_rule_list(select)
    ignore_rules = _parse_rule_list(ignore)
    hot_classes = HOT_CLASSES if hot_classes is None else hot_classes
    hot_functions = HOT_FUNCTIONS if hot_functions is None else hot_functions
    batch_functions = (
        HOT_BATCH_FUNCTIONS if batch_functions is None else batch_functions
    )

    index = ProjectIndex()
    infos: list[ModuleInfo] = []
    findings: list[Finding] = []
    for module, (path, source) in sorted(sources.items()):
        try:
            info = _build_module(module, path, source)
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="E999",
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 1),
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        infos.append(info)
        index.add_module(info)

    raw: list[Finding] = []
    for info in infos:
        raw.extend(
            check_module(
                info, index, hot_classes, hot_functions, batch_functions
            )
        )
    # Batch functions are (by construction) also hot functions, but the
    # union keeps H200 honest for custom manifests where they diverge.
    raw.extend(
        check_manifest(index, hot_classes, hot_functions | batch_functions)
    )
    # Whole-project dataflow passes: determinism taint (D11x) and
    # cache-key soundness (K4xx) both need the complete index.
    raw.extend(check_flow(index))
    raw.extend(check_keys(index))

    # Apply suppressions uniformly, by finding path, then report stale
    # comments (W001) — those never self-suppress.
    suppressions = {info.path: parse_suppressions(info.source) for info in infos}
    for finding in raw:
        file_suppressions = suppressions.get(finding.path)
        if file_suppressions is None or not file_suppressions.suppressed(
            finding
        ):
            findings.append(finding)
    if show_unused_noqa:
        for info in infos:
            for lineno, description in suppressions[info.path].unused():
                findings.append(
                    Finding(
                        rule="W001",
                        path=info.path,
                        line=lineno,
                        col=1,
                        message=f"unused suppression {description}: no "
                        "finding matches it any more; delete the comment",
                    )
                )

    findings = [
        f
        for f in findings
        if rule_selected(f.rule, select_rules, ignore_rules)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Sequence[Path],
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    changed_only: bool = False,
    exclude: Sequence[Path] = (),
    show_unused_noqa: bool = False,
) -> list[Finding]:
    """Lint files or trees on disk; the ``profess lint`` entry point."""
    files = (
        changed_files(paths)
        if changed_only
        else discover_files(paths, exclude=exclude)
    )
    if changed_only and exclude:
        roots = [e.resolve() for e in exclude]
        files = [
            f
            for f in files
            if not any(
                f.resolve() == root or root in f.resolve().parents
                for root in roots
            )
        ]
    sources: dict[str, tuple[str, str]] = {}
    for file in files:
        module = module_name_for(file)
        # Duplicate module names (e.g. two loose scripts both named
        # conftest) get disambiguated by path so neither is dropped.
        key = module if module not in sources else f"{module}:{file}"
        sources[key] = (str(file), file.read_text(encoding="utf-8"))
    return lint_sources(
        sources,
        select=select,
        ignore=ignore,
        show_unused_noqa=show_unused_noqa,
    )


# ----------------------------------------------------------------------
# SARIF (GitHub code scanning) rendering
# ----------------------------------------------------------------------
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_location(path: str, line: int, col: int) -> dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": line, "startColumn": max(col, 1)},
        }
    }


def render_sarif(findings: Sequence[Finding]) -> dict[str, object]:
    """SARIF 2.1.0 payload for ``profess lint --format sarif``.

    Dataflow traces render as SARIF code flows, so GitHub code scanning
    shows the full source→sink chain inline.
    """
    from repro.lint.rules import RULES

    results: list[dict[str, object]] = []
    for finding in findings:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                _sarif_location(finding.path, finding.line, finding.col)
            ],
        }
        if finding.trace:
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": {
                                        **_sarif_location(
                                            step.path, step.line, 1
                                        ),
                                        "message": {"text": step.note},
                                    }
                                }
                                for step in finding.trace
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    return {
        "version": "2.1.0",
        "$schema": _SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "profess-lint",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": description},
                            }
                            for rule, description in sorted(RULES.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
