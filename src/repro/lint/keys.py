"""Cache-key soundness analysis (rules K401/K402/K403).

The disk :class:`~repro.exec.cache.ResultCache` is only sound if every
field that can change a simulation's outcome is part of the content
hash.  A field excluded from :meth:`SystemConfig.cache_token` /
:meth:`RunSpec.cache_key` but consulted on a simulation path silently
serves stale results — the worst failure mode a result cache has.

This whole-project pass turns that contract into machine-checked rules:

* **K401** — a *key class* field excluded from the token walk is read
  somewhere in the project and is not on the class's explicit
  ``_CACHE_NEUTRAL_FIELDS`` allowlist.  Each finding carries a trace:
  field declaration → the token method that excludes it → the read site.
* **K402** — a stale ``_CACHE_NEUTRAL_FIELDS`` entry: it names no field,
  or names a field the walk already covers.  Allowlists must shrink when
  the exclusion they document goes away.
* **K403** — an impure operation (I/O, environment, clocks, RNG,
  ``global``) is reachable from token computation.  Tokens must be pure
  functions of the spec's field values.

A *key class* is any indexed class that defines ``cache_token()`` or
``cache_key()``.  Coverage is derived statically: a call to
``canonical_value(self)`` / ``canonical_digest(self)`` / ``asdict(self)``
covers every dataclass field, each ``del value["name"]`` (conditional or
not) excludes one, and otherwise the covered set is exactly the
``self.<field>`` reads inside the method.  The allowlist contract is
documented in DESIGN.md §16.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.lint.engine import (
    ClassInfo,
    Finding,
    ModuleInfo,
    ProjectIndex,
    TraceStep,
    _literal_str_tuple,
    resolve_dotted,
)
from repro.lint.rules import _CLOCK_CALLS

KEY_METHODS = ("cache_token", "cache_key")
ALLOWLIST_NAME = "_CACHE_NEUTRAL_FIELDS"

#: Calls that walk every dataclass field of their argument.
_FIELD_WALKERS = frozenset({"canonical_value", "canonical_digest", "asdict"})

#: Untyped base names the K401 read scan treats as "probably a key
#: class" when exactly one key class has the field being read.
_FALLBACK_NAMES = frozenset({"config", "cfg", "spec"})

#: Impure callables: reaching one from token computation is K403.
_IMPURE_EXACT = frozenset(
    {
        "open",
        "input",
        "print",
        "eval",
        "exec",
        "os.system",
        "os.popen",
        "os.urandom",
        "os.getrandom",
        "os.getenv",
        "os.putenv",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.mkdir",
        "os.makedirs",
    }
) | frozenset(_CLOCK_CALLS)
_IMPURE_PREFIXES = (
    "os.environ",
    "subprocess.",
    "socket.",
    "shutil.",
    "random.",
    "numpy.random.",
    "np.random.",
    "secrets.",
)

#: Trace length cap shared with the flow analysis.
_MAX_CHAIN = 8


@dataclass(slots=True)
class _KeyClass:
    """One class defining ``cache_token()``/``cache_key()``, analyzed."""

    cls: ClassInfo
    info: ModuleInfo
    token: ast.FunctionDef
    covered: frozenset[str] = frozenset()
    excluded: frozenset[str] = frozenset()
    allowlist: frozenset[str] = frozenset()
    allowlist_line: Optional[int] = None
    #: excluded minus allowlist: reads of these are K401.
    unprotected: frozenset[str] = frozenset()
    field_lines: dict[str, int] = field(default_factory=dict)

    @property
    def bare_name(self) -> str:
        return self.cls.qualname.rsplit(".", 1)[-1]


def _is_impure(resolved: str) -> bool:
    return resolved in _IMPURE_EXACT or any(
        resolved.startswith(prefix) for prefix in _IMPURE_PREFIXES
    )


# ----------------------------------------------------------------------
# Key-class discovery and coverage analysis
# ----------------------------------------------------------------------
def _find_key_classes(index: ProjectIndex) -> list[_KeyClass]:
    result: list[_KeyClass] = []
    for qualified in sorted(index.classes):
        cls = index.classes[qualified]
        if cls.node is None or not cls.fields:
            continue
        info = index.modules.get(cls.module)
        if info is None:
            continue
        token: Optional[ast.FunctionDef] = None
        for statement in cls.node.body:
            if (
                isinstance(statement, ast.FunctionDef)
                and statement.name in KEY_METHODS
            ):
                token = statement
                break
        if token is None:
            continue
        result.append(_analyze(cls, info, token))
    return result


def _analyze(cls: ClassInfo, info: ModuleInfo, token: ast.FunctionDef) -> _KeyClass:
    fields = set(cls.fields)
    walks_all = False
    reads: set[str] = set()
    dels: set[str] = set()
    for node in ast.walk(token):
        if isinstance(node, ast.Call):
            resolved = resolve_dotted(info, node.func)
            if (
                resolved is not None
                and resolved.rsplit(".", 1)[-1] in _FIELD_WALKERS
                and any(
                    isinstance(arg, ast.Name) and arg.id == "self"
                    for arg in node.args
                )
            ):
                walks_all = True
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
            and node.attr in fields
        ):
            reads.add(node.attr)
        elif isinstance(node, ast.Delete):
            # ``del value["axes"]`` excludes a field from the walk even
            # when conditional — a sometimes-missing field is excluded
            # for soundness purposes.
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    dels.add(target.slice.value)
    covered = (fields - dels) if walks_all else (reads - dels)
    excluded = fields - covered

    allowlist: set[str] = set()
    allowlist_line: Optional[int] = None
    for statement in cls.node.body if cls.node is not None else []:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and statement.targets[0].id == ALLOWLIST_NAME
        ):
            names, _ = _literal_str_tuple(statement.value)
            if names is not None:
                allowlist = set(names)
            allowlist_line = statement.lineno

    field_lines: dict[str, int] = {}
    for statement in cls.node.body if cls.node is not None else []:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            field_lines[statement.target.id] = statement.lineno

    return _KeyClass(
        cls=cls,
        info=info,
        token=token,
        covered=frozenset(covered),
        excluded=frozenset(excluded),
        allowlist=frozenset(allowlist),
        allowlist_line=allowlist_line,
        unprotected=frozenset(excluded - allowlist),
        field_lines=field_lines,
    )


# ----------------------------------------------------------------------
# K402: stale allowlist entries
# ----------------------------------------------------------------------
def _check_allowlist(key_class: _KeyClass) -> list[Finding]:
    if key_class.allowlist_line is None:
        return []
    findings: list[Finding] = []
    fields = set(key_class.cls.fields)
    for entry in sorted(key_class.allowlist):
        if entry not in fields:
            reason = "names no dataclass field"
        elif entry in key_class.covered:
            reason = (
                f"is already covered by {key_class.token.name}()'s walk"
            )
        else:
            continue
        findings.append(
            Finding(
                rule="K402",
                path=key_class.info.path,
                line=key_class.allowlist_line,
                col=1,
                message=(
                    f"stale {ALLOWLIST_NAME} entry {entry!r} on "
                    f"{key_class.cls.qualname}: it {reason}; delete the "
                    "entry so the allowlist stays an exact record of "
                    "reviewed exclusions"
                ),
                end_line=key_class.allowlist_line,
            )
        )
    return findings


# ----------------------------------------------------------------------
# K401: reads of excluded, un-allowlisted fields
# ----------------------------------------------------------------------
class _ReadScanner(ast.NodeVisitor):
    """Find typed reads of watched key-class fields in one module."""

    def __init__(
        self,
        info: ModuleInfo,
        key_classes: list[_KeyClass],
        lookup: dict[str, _KeyClass],
        field_type_map: dict[str, _KeyClass],
        findings: list[Finding],
    ) -> None:
        self.info = info
        self.key_classes = key_classes
        self.lookup = lookup
        self.field_type_map = field_type_map
        self.findings = findings
        self.watched = {
            name for kc in key_classes for name in kc.unprotected
        }
        self.env_stack: list[dict[str, _KeyClass]] = [{}]
        #: Lexical ranges of key classes defined in this module — reads
        #: inside a key class's own body are its implementation, not a
        #: cache hazard.
        self.skip_ranges = [
            (kc.cls.node.lineno, kc.cls.node.end_lineno or kc.cls.node.lineno)
            for kc in key_classes
            if kc.cls.module == info.module and kc.cls.node is not None
        ]

    # -- typing environment --------------------------------------------
    def _annotation_class(
        self, annotation: Optional[ast.expr]
    ) -> Optional[_KeyClass]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            dotted: Optional[str] = annotation.value
        elif isinstance(annotation, (ast.Name, ast.Attribute)):
            dotted = resolve_dotted(self.info, annotation)
        else:
            dotted = None
        if dotted is None:
            return None
        return self.lookup.get(dotted) or self.lookup.get(
            dotted.rsplit(".", 1)[-1]
        )

    def _enter_function(self, node: ast.FunctionDef) -> None:
        env: dict[str, _KeyClass] = {}
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            key_class = self._annotation_class(arg.annotation)
            if key_class is not None:
                env[arg.arg] = key_class
        self.env_stack.append(env)
        self.generic_visit(node)
        self.env_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)  # type: ignore[arg-type]

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # ``spec: RunSpec = ...`` inside a function types the local.
        if isinstance(node.target, ast.Name):
            key_class = self._annotation_class(node.annotation)
            if key_class is not None:
                self.env_stack[-1][node.target.id] = key_class
        self.generic_visit(node)

    # -- read detection ------------------------------------------------
    def _base_class(self, expr: ast.expr) -> Optional[_KeyClass]:
        if isinstance(expr, ast.Name):
            for env in reversed(self.env_stack):
                if expr.id in env:
                    return env[expr.id]
            return None
        if isinstance(expr, ast.Attribute):
            # ``spec.config.<field>``: any attribute named like a field
            # annotated as a key class resolves to that class.
            return self.field_type_map.get(expr.attr)
        return None

    def _skipped(self, node: ast.Attribute) -> bool:
        return any(
            start <= node.lineno <= end for start, end in self.skip_ranges
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.attr in self.watched
            and not self._skipped(node)
        ):
            key_class = self._base_class(node.value)
            if key_class is None and isinstance(node.value, ast.Name):
                if node.value.id in _FALLBACK_NAMES:
                    candidates = [
                        kc
                        for kc in self.key_classes
                        if node.attr in kc.unprotected
                    ]
                    if len(candidates) == 1:
                        key_class = candidates[0]
            if key_class is not None and node.attr in key_class.unprotected:
                self._record(key_class, node)
        self.generic_visit(node)

    def _record(self, key_class: _KeyClass, node: ast.Attribute) -> None:
        field_line = key_class.field_lines.get(
            node.attr, key_class.cls.lineno
        )
        self.findings.append(
            Finding(
                rule="K401",
                path=self.info.path,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"'{key_class.cls.qualname}.{node.attr}' is excluded "
                    f"from {key_class.token.name}()'s cache walk but read "
                    "here; include it in the walk or add it to "
                    f"{ALLOWLIST_NAME} with a review note"
                ),
                end_line=node.end_lineno or node.lineno,
                trace=(
                    TraceStep(
                        key_class.info.path,
                        field_line,
                        f"field {node.attr!r} declared here",
                    ),
                    TraceStep(
                        key_class.info.path,
                        key_class.token.lineno,
                        f"{key_class.token.name}() excludes it from the "
                        "cache walk",
                    ),
                    TraceStep(
                        self.info.path,
                        node.lineno,
                        "timing-relevant read not on the allowlist",
                    ),
                ),
            )
        )


def _scan_reads(
    index: ProjectIndex, key_classes: list[_KeyClass]
) -> list[Finding]:
    watched = [kc for kc in key_classes if kc.unprotected]
    if not watched:
        return []
    lookup: dict[str, _KeyClass] = {}
    for kc in key_classes:
        lookup.setdefault(kc.cls.qualified, kc)
        lookup.setdefault(kc.cls.qualname, kc)
        lookup.setdefault(kc.bare_name, kc)
    # Field name -> key class, for annotation chains like
    # ``RunSpec.config: SystemConfig`` making every ``*.config.<field>``
    # read a SystemConfig read.
    field_type_map: dict[str, _KeyClass] = {}
    for qualified in sorted(index.classes):
        cls = index.classes[qualified]
        for name, annotation in cls.fields.items():
            if annotation is None:
                continue
            target = lookup.get(annotation) or lookup.get(
                annotation.rsplit(".", 1)[-1]
            )
            if target is not None:
                field_type_map.setdefault(name, target)
    findings: list[Finding] = []
    for module_name in sorted(index.modules):
        info = index.modules[module_name]
        scanner = _ReadScanner(
            info, watched, lookup, field_type_map, findings
        )
        scanner.visit(info.tree)
    return findings


# ----------------------------------------------------------------------
# K403: purity of everything reachable from token computation
# ----------------------------------------------------------------------
def _class_prefix_of(info: ModuleInfo, qualified: str) -> Optional[str]:
    local = qualified[len(info.module) + 1 :]
    if "." not in local:
        return None
    prefix = local.rsplit(".", 1)[0]
    return prefix if prefix in info.classes else None


def _check_purity(
    key_class: _KeyClass,
    index: ProjectIndex,
    function_map: dict[str, tuple[ModuleInfo, ast.FunctionDef]],
) -> list[Finding]:
    findings: list[Finding] = []
    emitted: set[tuple[str, int]] = set()
    start = (
        f"{key_class.cls.module}.{key_class.cls.qualname}."
        f"{key_class.token.name}"
    )
    queue: deque[tuple[str, tuple[TraceStep, ...]]] = deque([(start, ())])
    seen = {start}
    while queue:
        qualified, chain = queue.popleft()
        entry = function_map.get(qualified)
        if entry is None:
            continue
        info, node = entry
        owner_prefix = _class_prefix_of(info, qualified)
        owner = (
            info.classes.get(owner_prefix) if owner_prefix is not None else None
        )
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                keyword = (
                    "global" if isinstance(sub, ast.Global) else "nonlocal"
                )
                _emit_impure(
                    findings,
                    emitted,
                    key_class,
                    info,
                    sub,
                    chain,
                    f"`{keyword}` statement",
                )
            elif isinstance(sub, ast.Call):
                for resolved in _call_targets(
                    index, info, sub, owner_prefix, owner
                ):
                    if isinstance(resolved, str):
                        if _is_impure(resolved):
                            _emit_impure(
                                findings,
                                emitted,
                                key_class,
                                info,
                                sub,
                                chain,
                                f"call to {resolved}()",
                            )
                        continue
                    # (qualified-name, display-name) callee to walk into.
                    callee, display = resolved
                    if callee in seen or callee not in function_map:
                        continue
                    seen.add(callee)
                    step = TraceStep(
                        info.path, sub.lineno, f"calls {display}()"
                    )
                    next_chain = (
                        chain + (step,) if len(chain) < _MAX_CHAIN else chain
                    )
                    queue.append((callee, next_chain))
            elif isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Load
            ):
                dotted = resolve_dotted(info, sub)
                if dotted == "os.environ":
                    _emit_impure(
                        findings,
                        emitted,
                        key_class,
                        info,
                        sub,
                        chain,
                        "os.environ read",
                    )
    return findings


def _call_targets(
    index: ProjectIndex,
    info: ModuleInfo,
    call: ast.Call,
    owner_prefix: Optional[str],
    owner: Optional[ClassInfo],
) -> list[object]:
    """Resolve one call: impure names (str) and callees to walk (tuple)."""
    func = call.func
    out: list[object] = []
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in ("self", "cls"):
            if owner_prefix is not None:
                out.append(
                    (
                        f"{info.module}.{owner_prefix}.{func.attr}",
                        f"self.{func.attr}",
                    )
                )
            return out
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id in ("self", "cls")
        and owner is not None
    ):
        # self.<field>.<method>(): resolve through the field annotation.
        annotation = owner.fields.get(func.value.attr)
        if annotation is not None:
            target = index.classes.get(annotation) or index.classes.get(
                f"{info.module}.{annotation}"
            )
            if target is not None:
                out.append(
                    (
                        f"{target.module}.{target.qualname}.{func.attr}",
                        f"self.{func.value.attr}.{func.attr}",
                    )
                )
        return out
    if isinstance(func, (ast.Name, ast.Attribute)):
        resolved = resolve_dotted(info, func)
        if resolved is None:
            return out
        if _is_impure(resolved):
            out.append(resolved)
            return out
        candidates = (
            [resolved, f"{info.module}.{resolved}"]
            if "." not in resolved
            else [resolved]
        )
        display = resolved.rsplit(".", 1)[-1]
        for candidate in candidates:
            out.append((candidate, display))
            target = index.classes.get(candidate)
            if target is not None:
                # Constructor call: walk __init__/__post_init__.
                for method in ("__init__", "__post_init__"):
                    out.append(
                        (
                            f"{candidate}.{method}",
                            f"{display}.{method}",
                        )
                    )
    return out


def _emit_impure(
    findings: list[Finding],
    emitted: set[tuple[str, int]],
    key_class: _KeyClass,
    info: ModuleInfo,
    node: ast.AST,
    chain: tuple[TraceStep, ...],
    description: str,
) -> None:
    line = getattr(node, "lineno", 1)
    key = (info.path, line)
    if key in emitted:
        return
    emitted.add(key)
    end_line = getattr(node, "end_lineno", None) or line
    if hasattr(node, "body"):
        end_line = line
    findings.append(
        Finding(
            rule="K403",
            path=info.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=(
                f"impure operation ({description}) is reachable from "
                f"{key_class.cls.qualname}.{key_class.token.name}(); "
                "cache-token computation must be a pure function of "
                "field values"
            ),
            end_line=end_line,
            trace=(
                TraceStep(
                    key_class.info.path,
                    key_class.token.lineno,
                    f"{key_class.token.name}() defined here",
                ),
            )
            + chain
            + (TraceStep(info.path, line, f"impure: {description}"),),
        )
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_keys(index: ProjectIndex) -> list[Finding]:
    """Run the K4xx cache-key soundness analysis over the project."""
    key_classes = _find_key_classes(index)
    if not key_classes:
        return []
    function_map: dict[str, tuple[ModuleInfo, ast.FunctionDef]] = {}
    for module_name in sorted(index.modules):
        info = index.modules[module_name]
        for qualified, node in info.function_nodes.items():
            function_map[qualified] = (info, node)
    findings: list[Finding] = []
    for key_class in key_classes:
        findings.extend(_check_allowlist(key_class))
        findings.extend(_check_purity(key_class, index, function_map))
    findings.extend(_scan_reads(index, key_classes))
    return findings
