"""The hot-path manifest: the perf contract behind DESIGN.md §10/§14.

PR 2's kernel fast path assumes a specific set of structs stays *slim*
(``__slots__``, fixed attribute sets) and a specific set of functions
stays *pure* (no f-strings, logging, or try/except on the per-event
path).  This module is the single place that contract is written down;
the H-rules of :mod:`repro.lint` enforce it statically, and the perf
harness (``profess perf``) measures what it buys.

Adding a class here obliges it to declare ``__slots__`` (H201) and to
create every instance attribute inside ``__init__`` (H202).  Adding a
function here forbids introducing f-strings, logging/print calls, or
try/except inside its body (H203; f-strings inside ``raise`` statements
are exempt — the error path is allowed to format).

The columnar memory kernel (DESIGN.md §14) adds a third obligation:
functions in :data:`HOT_BATCH_FUNCTIONS` form the fused per-tick loop
over the structure-of-arrays queues and must stay *allocation-free* —
no container displays/constructors, comprehensions, lambdas, closures,
``functools.partial``, or project-class construction per event (H204).
"""

from __future__ import annotations

#: Classes allocated or mutated once per event/request.  Every entry
#: must declare ``__slots__`` (directly or via ``dataclass(slots=True)``).
HOT_CLASSES: frozenset[str] = frozenset(
    {
        "repro.cache.sets.SetAssociativeCache",
        "repro.cache.stc.STC",
        "repro.cache.stc.STCEntry",
        "repro.common.events.EventQueue",
        "repro.core.mdm_stats.MDMProgramStats",
        "repro.cpu.core_model.TraceCore",
        "repro.hybrid.memory.CoreMemStats",
        "repro.hybrid.memory.HybridMemoryController",
        "repro.hybrid.memory._PendingFetch",
        "repro.hybrid.st.SwapGroupTable",
        "repro.hybrid.st_entry.STEntry",
        "repro.mem.bank.Bank",
        "repro.mem.batch.RequestBatch",
        "repro.mem.channel.Channel",
        "repro.mem.channel.ChannelStats",
        "repro.mem.channel.ModuleState",
        "repro.mem.request.DeviceAddress",
        "repro.mem.request.MemRequest",
        "repro.mem.scheduler.FrFcfsCapScheduler",
        "repro.policies.base.AccessContext",
        "repro.traces.decode.DecodedChunk",
        "repro.traces.decode.TraceDecoder",
    }
)

#: Functions on the per-event critical path (the inlined ``run()`` loops
#: and the per-request serve/issue chain).  H203 keeps them free of
#: formatting, logging, and exception-handling overhead.
HOT_FUNCTIONS: frozenset[str] = frozenset(
    {
        "repro.common.events.EventQueue.run",
        "repro.common.events.EventQueue.step",
        "repro.cpu.core_model.TraceCore._dispatch",
        "repro.cpu.core_model.TraceCore._issue_next",
        "repro.cpu.core_model.TraceCore._refill",
        "repro.hybrid.memory.HybridMemoryController._serve",
        "repro.hybrid.memory.HybridMemoryController.access",
        "repro.mem.backend.mem_tick",
        "repro.mem.batch.RequestBatch.push",
        "repro.mem.batch.RequestBatch.pop_at",
        "repro.mem.channel.Channel._tick_kernel",
        "repro.mem.channel.Channel._tick_python",
        "repro.mem.channel.Channel.enqueue",
        "repro.mem.channel.Channel.enqueue_soa",
        "repro.mem.scheduler.FrFcfsCapScheduler.select",
        "repro.mem.scheduler.FrFcfsCapScheduler.select_batched",
    }
)

#: The fused batched tick loop: one call per scheduling decision over
#: the SoA columns.  H204 bans per-request object allocation inside —
#: container displays/constructors, comprehensions, lambdas, nested
#: functions, ``functools.partial``, and project-class construction.
#: (All of these are also H203 hot functions.)
HOT_BATCH_FUNCTIONS: frozenset[str] = frozenset(
    {
        "repro.mem.backend.mem_tick",
        "repro.mem.batch.RequestBatch.pop_at",
        "repro.mem.batch.RequestBatch.push",
        "repro.mem.channel.Channel._tick_kernel",
        "repro.mem.channel.Channel._tick_python",
        "repro.mem.channel.Channel.enqueue_soa",
        "repro.mem.scheduler.FrFcfsCapScheduler.select_batched",
    }
)
