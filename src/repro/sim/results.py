"""Result containers produced by the simulation driver."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProgramResult:
    """One program's outcome in a simulation."""

    name: str
    core_id: int
    instructions: int
    ipc: float
    requests: int
    m1_fraction: float
    passes_completed: int
    swaps_involving: int


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulation run reports."""

    policy: str
    cycles: int
    programs: tuple[ProgramResult, ...]
    total_requests: int
    total_swaps: int
    swap_fraction: float
    average_read_latency: float
    stc_hit_rate: float
    energy_joules: float
    #: Requests per second per watt (== requests per joule), Figures 12/15.
    energy_efficiency: float
    #: Free-form extras (per-experiment diagnostics).
    extra: dict = field(default_factory=dict)

    def program(self, index: int) -> ProgramResult:
        """Result of the program on core ``index``."""
        return self.programs[index]

    @property
    def ipc_by_core(self) -> tuple[float, ...]:
        """IPCs in core order."""
        return tuple(p.ipc for p in self.programs)

    def summary_line(self) -> str:
        """A one-line human-readable digest."""
        ipcs = ", ".join(f"{p.name}={p.ipc:.3f}" for p in self.programs)
        return (
            f"[{self.policy}] cycles={self.cycles} swaps={self.total_swaps} "
            f"stc_hit={self.stc_hit_rate:.2%} ipc: {ipcs}"
        )
