"""Result containers produced by the simulation driver.

Everything here is plain data: fully picklable (results cross process
boundaries under the parallel executor) and JSON round-trippable via
:meth:`SimulationResult.to_dict` / :meth:`SimulationResult.from_dict`
(results persist across CLI invocations in the disk cache).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.common.serialize import jsonable


@dataclass(frozen=True)
class ProgramResult:
    """One program's outcome in a simulation."""

    name: str
    core_id: int
    instructions: int
    ipc: float
    requests: int
    m1_fraction: float
    passes_completed: int
    swaps_involving: int


@dataclass(frozen=True)
class PolicyStats:
    """Serializable summary of a migration policy's decision counters.

    Replaces the live policy object that results used to carry: the same
    introspection (how often each Table 7 guidance case fired, how many
    M2-access decisions ended in promotion) without holding simulator
    state that can neither be pickled across a process pool nor written
    to JSON.  ``case_counts`` keys are strings ("1", "2", "3",
    "default", "same") so the mapping survives JSON round-trips.
    """

    name: str
    decisions: int = 0
    promotions: int = 0
    case_counts: dict = field(default_factory=dict)

    @classmethod
    def from_policy(cls, policy) -> "PolicyStats":
        """Snapshot the introspectable counters of a policy object."""
        return cls(
            name=policy.name,
            decisions=int(getattr(policy, "decisions", 0)),
            promotions=int(getattr(policy, "promotions", 0)),
            case_counts={
                str(case): int(count)
                for case, count in getattr(policy, "case_counts", {}).items()
            },
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulation run reports."""

    policy: str
    cycles: int
    programs: tuple[ProgramResult, ...]
    total_requests: int
    total_swaps: int
    swap_fraction: float
    average_read_latency: float
    stc_hit_rate: float
    energy_joules: float
    #: Requests per second per watt (== requests per joule), Figures 12/15.
    energy_efficiency: float
    #: Decision-counter summary of the policy that produced this run.
    policy_stats: Optional[PolicyStats] = None
    #: Free-form extras (per-experiment diagnostics).
    extra: dict = field(default_factory=dict)

    def program(self, index: int) -> ProgramResult:
        """Result of the program on core ``index``."""
        return self.programs[index]

    @property
    def ipc_by_core(self) -> tuple[float, ...]:
        """IPCs in core order."""
        return tuple(p.ipc for p in self.programs)

    def summary_line(self) -> str:
        """A one-line human-readable digest."""
        ipcs = ", ".join(f"{p.name}={p.ipc:.3f}" for p in self.programs)
        return (
            f"[{self.policy}] cycles={self.cycles} swaps={self.total_swaps} "
            f"stc_hit={self.stc_hit_rate:.2%} ipc: {ipcs}"
        )

    # ------------------------------------------------------------------
    # JSON round-trip (disk cache, result archives)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible dict that :meth:`from_dict` inverts."""
        extra = {}
        for key, value in self.extra.items():
            if key == "rsm_history":
                extra[key] = [asdict(sample) for sample in value]
            else:
                extra[key] = jsonable(value)
        return {
            "policy": self.policy,
            "cycles": self.cycles,
            "programs": [asdict(p) for p in self.programs],
            "total_requests": self.total_requests,
            "total_swaps": self.total_swaps,
            "swap_fraction": self.swap_fraction,
            "average_read_latency": self.average_read_latency,
            "stc_hit_rate": self.stc_hit_rate,
            "energy_joules": self.energy_joules,
            "energy_efficiency": self.energy_efficiency,
            "policy_stats": (
                asdict(self.policy_stats)
                if self.policy_stats is not None
                else None
            ),
            "extra": extra,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result written by :meth:`to_dict`."""
        from repro.core.rsm import RSMSample

        extra = {}
        for key, value in payload.get("extra", {}).items():
            if key == "rsm_history":
                extra[key] = [RSMSample(**sample) for sample in value]
            else:
                extra[key] = value
        stats = payload.get("policy_stats")
        return cls(
            policy=payload["policy"],
            cycles=payload["cycles"],
            programs=tuple(
                ProgramResult(**p) for p in payload["programs"]
            ),
            total_requests=payload["total_requests"],
            total_swaps=payload["total_swaps"],
            swap_fraction=payload["swap_fraction"],
            average_read_latency=payload["average_read_latency"],
            stc_hit_rate=payload["stc_hit_rate"],
            energy_joules=payload["energy_joules"],
            energy_efficiency=payload["energy_efficiency"],
            policy_stats=PolicyStats(**stats) if stats else None,
            extra=extra,
        )
