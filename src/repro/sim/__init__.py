"""Simulation driver and figures of merit."""

from repro.sim.results import ProgramResult, SimulationResult
from repro.sim.engine import SimulationDriver
from repro.sim.validation import ValidationError, validate_controller
from repro.sim.metrics import (
    slowdown,
    unfairness,
    weighted_speedup,
)

__all__ = [
    "ProgramResult",
    "SimulationDriver",
    "SimulationResult",
    "ValidationError",
    "validate_controller",
    "slowdown",
    "unfairness",
    "weighted_speedup",
]
