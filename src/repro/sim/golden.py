"""The golden determinism scenarios, canonical serialization, and digests.

``tests/golden/`` pins two full simulations — every result field, byte
for byte — against kernel changes.  This module is the single source of
truth for *what* those scenarios are and *how* a result is serialized
for comparison, shared by the test suite (``tests/
test_golden_determinism.py``), the ``profess golden`` CLI, and the CI
``determinism`` job that regenerates the blobs on multiple Python
versions and cross-checks their digests.

The scenarios were captured from the pre-optimization kernel (commit
a771054); regenerate the blobs ONLY when a change is *intended* to alter
simulation results, and say so explicitly in the commit message.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:
    from repro.sim.engine import SimulationDriver


def _single_pom_driver(
    mem_backend: Optional[str] = None,
) -> "SimulationDriver":
    from repro.common.config import paper_single_core
    from repro.sim.engine import SimulationDriver
    from repro.traces.generator import synthesize_trace

    config = paper_single_core(scale=128)
    traces = [("zeusmp", synthesize_trace("zeusmp", 1500, scale=128, seed=0))]
    return SimulationDriver(
        config, "pom", traces, seed=0, mem_backend=mem_backend
    )


def _quad_profess_driver(
    mem_backend: Optional[str] = None,
) -> "SimulationDriver":
    from repro.common.config import paper_quad_core
    from repro.sim.engine import SimulationDriver
    from repro.traces.generator import synthesize_trace

    config = paper_quad_core(scale=128)
    traces = [
        ("zeusmp", synthesize_trace("zeusmp", 1200, scale=128, seed=0)),
        ("leslie3d", synthesize_trace("leslie3d", 800, scale=128, seed=1)),
        ("mcf", synthesize_trace("mcf", 800, scale=128, seed=2)),
        ("libquantum", synthesize_trace("libquantum", 800, scale=128, seed=3)),
    ]
    return SimulationDriver(
        config, "profess", traces, seed=0, mem_backend=mem_backend
    )


def _quad_composed_driver(
    mem_backend: Optional[str] = None,
) -> "SimulationDriver":
    """A composed registry spec: ProFess with the LFU STC replacement.

    Pins the whole composable-policy path — spec parsing, canonical
    naming (``mdm+rsm+stc:lfu`` -> ``profess+stc:lfu``), axis resolution,
    and the non-default STC array — byte for byte.
    """
    from repro.common.config import paper_quad_core
    from repro.sim.engine import SimulationDriver
    from repro.traces.generator import synthesize_trace

    config = paper_quad_core(scale=128)
    traces = [
        ("zeusmp", synthesize_trace("zeusmp", 1000, scale=128, seed=0)),
        ("leslie3d", synthesize_trace("leslie3d", 600, scale=128, seed=1)),
        ("mcf", synthesize_trace("mcf", 600, scale=128, seed=2)),
        ("libquantum", synthesize_trace("libquantum", 600, scale=128, seed=3)),
    ]
    return SimulationDriver(
        config, "mdm+rsm+stc:lfu", traces, seed=0, mem_backend=mem_backend
    )


#: name -> fresh driver for that scenario.  Each builder takes an
#: optional memory-timing backend override ("python"/"compiled"/"auto");
#: the blobs are backend-independent by contract — the CI backend-parity
#: job regenerates them under both backends and diffs byte-for-byte.
GOLDEN_SCENARIOS: Dict[
    str, Callable[[Optional[str]], "SimulationDriver"]
] = {
    "single_pom": _single_pom_driver,
    "quad_profess": _quad_profess_driver,
    "quad_composed": _quad_composed_driver,
}


def golden_text(name: str, mem_backend: Optional[str] = None) -> str:
    """Run scenario ``name`` and serialize exactly as the blobs were.

    Any drift in values OR in ``to_dict()`` structure changes the text
    (and therefore the digest).  ``mem_backend`` selects the memory
    timing kernel; every backend must produce identical text.
    """
    result = GOLDEN_SCENARIOS[name](mem_backend).run()
    return json.dumps(result.to_dict(), indent=1, sort_keys=True) + "\n"


def golden_digest(name: str, mem_backend: Optional[str] = None) -> str:
    """SHA-256 of the scenario's canonical serialization."""
    return hashlib.sha256(
        golden_text(name, mem_backend).encode("utf-8")
    ).hexdigest()


def result_digest(result) -> str:
    """Canonical SHA-256 of one :class:`SimulationResult`.

    The byte-identity contract for resilient execution (DESIGN.md §15):
    however a result was obtained — serial, pooled, retried after a
    worker death, replayed through ``--resume``, or read back from the
    integrity-checked cache — its canonical serialization must hash the
    same as a clean serial run's.  The chaos suite asserts exactly this.
    Uses the same serialization as the golden blobs so the two
    determinism contracts cannot drift apart.
    """
    text = json.dumps(result.to_dict(), indent=1, sort_keys=True) + "\n"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def golden_digests(mem_backend: Optional[str] = None) -> Dict[str, str]:
    """Digest of every golden scenario (the cross-version CI payload)."""
    return {
        name: golden_digest(name, mem_backend)
        for name in sorted(GOLDEN_SCENARIOS)
    }


def check_against_blobs(
    golden_dir: Path, mem_backend: Optional[str] = None
) -> Dict[str, str]:
    """Regenerate every scenario and diff against ``golden_dir`` blobs.

    Returns ``{scenario: problem}`` for mismatching or missing blobs
    (empty = all byte-identical).
    """
    problems: Dict[str, str] = {}
    for name in sorted(GOLDEN_SCENARIOS):
        blob = golden_dir / f"{name}.json"
        if not blob.exists():
            problems[name] = f"missing blob {blob}"
            continue
        if golden_text(name, mem_backend) != blob.read_text():
            problems[name] = f"regenerated result differs from {blob}"
    return problems
