"""The simulation driver: cores + page tables + controller + event loop.

Implements the paper's measurement methodology (Section 4.2): in a
multiprogrammed run, programs that finish their trace before the slowest
one are restarted ("we repeat programs that complete faster than the
slowest one, ensuring competition for M1"), and the run ends when the
last program completes its first pass.  Per-program IPC is instructions
retired over elapsed cycles at that instant.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.common.events import EventQueue
from repro.cpu.core_model import TraceCore
from repro.cpu.trace import Trace
from repro.hybrid.memory import HybridMemoryController
from repro.hybrid.regions import PageTable
from repro.policies.base import MigrationPolicy
from repro.policies.registry import build_policy
from repro.sim.results import PolicyStats, ProgramResult, SimulationResult
from repro.traces.generator import LINES_PER_PAGE

if TYPE_CHECKING:
    from repro.perf.profile import KernelProfile

#: Hard ceiling on processed events, to catch runaway simulations.  The
#: event queue raises :class:`SimulationError` when the ceiling is hit
#: with work still pending (a truncated run must never be mistaken for a
#: completed one).
MAX_EVENTS = 2_000_000_000


class SimulationDriver:
    """Builds and runs one simulation."""

    def __init__(
        self,
        config: SystemConfig,
        policy: Union[str, MigrationPolicy],
        traces: Sequence[tuple[str, Trace]],
        seed: int = 0,
        track_rsm_regions: bool = False,
        max_cycles: Optional[int] = None,
        program_of_core: Optional[Sequence[int]] = None,
        warmup_requests: int = 0,
        profile: Optional["KernelProfile"] = None,
        validate_every: int = 0,
        mem_backend: Optional[str] = None,
    ) -> None:
        if not traces:
            raise SimulationError("need at least one (name, trace) pair")
        if len(traces) > config.num_cores:
            raise SimulationError(
                f"{len(traces)} programs but only {config.num_cores} cores"
            )
        self.config = config
        self.traces = list(traces)
        self.events = EventQueue()
        self.policy = (
            build_policy(policy, config) if isinstance(policy, str) else policy
        )
        # Section 3.1.1: threads of a multi-threaded program share one
        # program id (counter sets, private region, address space).  The
        # default maps each trace to its own single-threaded program.
        if program_of_core is None:
            program_of_core = list(range(len(self.traces)))
        if len(program_of_core) != len(self.traces):
            raise SimulationError("program_of_core must cover every trace")
        self.program_of_core = list(program_of_core)
        # Idle cores (fewer traces than cores) map to program 0; they
        # issue no requests, so the mapping only keeps the id space dense.
        controller_map = self.program_of_core + [0] * (
            config.num_cores - len(self.traces)
        )
        self.controller = HybridMemoryController(
            config,
            self.events,
            self.policy,
            seed=seed,
            track_rsm_regions=track_rsm_regions,
            program_of_core=controller_map,
            mem_backend=mem_backend,
        )
        # One page table per program; threads share their program's
        # virtual address space, sized for the largest thread trace.
        footprint_pages_by_program: dict[int, int] = {}
        for core_id, (_name, trace) in enumerate(self.traces):
            program = self.program_of_core[core_id]
            pages = trace.max_line() // LINES_PER_PAGE + 1
            footprint_pages_by_program[program] = max(
                footprint_pages_by_program.get(program, 0), pages
            )
        self._program_tables = {
            program: PageTable(
                program=program,
                allocator=self.controller.allocator,
                num_pages=pages,
            )
            for program, pages in sorted(footprint_pages_by_program.items())
        }
        self.page_tables = [
            self._program_tables[self.program_of_core[core_id]]
            for core_id in range(len(self.traces))
        ]
        self.cores = [
            TraceCore(
                core_id=core_id,
                config=config.core,
                trace=trace,
                events=self.events,
                access=self._access,
                on_pass_complete=self._on_pass_complete,
            )
            for core_id, (_name, trace) in enumerate(self.traces)
        ]
        # Per-request bindings for _access (one call per demand request).
        self._translators = [
            table.translate_line for table in self.page_tables
        ]
        self._controller_access = self.controller.access
        self._first_pass_done = [False] * len(self.cores)
        self._end_cycle: Optional[int] = None
        self._instruction_snapshot: Optional[list[int]] = None
        self._max_cycles = max_cycles
        # Optional measurement warm-up (Section 4.2 observes M1 filling
        # within the first few percent of execution): IPC is measured
        # from the moment the first ``warmup_requests`` demand requests
        # have been served.
        self._warmup_requests = warmup_requests
        self._warmup_cycle = 0
        self._warmup_instructions = [0] * len(self.cores)
        self._warmed = warmup_requests <= 0
        # Optional throughput instrumentation (repro.perf); None keeps
        # the kernel on the uninstrumented fast path.
        self._profile = profile
        # Optional periodic invariant auditing (``--validate-every N``):
        # every N cycles a self-rescheduling event runs the full
        # :func:`repro.sim.validation.validate_controller` audit, so a
        # corrupted ST permutation or counter overflow aborts a long
        # simulation within N cycles instead of silently poisoning its
        # results.  0 (the default) schedules nothing — the hot path is
        # untouched and runs stay byte-identical to the golden blobs.
        if validate_every < 0:
            raise SimulationError("validate_every must be >= 0")
        self._validate_every = validate_every

    # ------------------------------------------------------------------
    def _access(self, core_id, virtual_line, is_write, on_complete) -> None:
        if (
            not self._warmed
            and self.controller.total_requests() >= self._warmup_requests
        ):
            self._warmed = True
            self._warmup_cycle = self.events.now
            self._warmup_instructions = [
                core.instructions_retired for core in self.cores
            ]
        physical_line = self._translators[core_id](virtual_line, LINES_PER_PAGE)
        self._controller_access(core_id, physical_line, is_write, on_complete)

    def _on_pass_complete(self, core_id: int, now: int) -> bool:
        self._first_pass_done[core_id] = True
        if all(self._first_pass_done):
            self._end_cycle = now
            self._instruction_snapshot = [
                core.instructions_retired for core in self.cores
            ]
            for core in self.cores:
                core.stop()
            return False
        return True  # others still on their first pass: repeat (Sec. 4.2)

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run to completion and return the results.

        The event loop itself lives in :meth:`EventQueue.run` (the
        inlined fast path); this method only wires up the cutoffs.  When
        the ``MAX_EVENTS`` ceiling is hit the queue raises
        :class:`SimulationError` instead of returning a truncated run.
        """
        for core in self.cores:
            core.start()
        if self._validate_every > 0:
            self.events.schedule(
                self.events.now + self._validate_every, self._periodic_validate
            )
        profile = self._profile
        started = time.perf_counter() if profile is not None else 0.0
        if profile is not None and profile.component_timing:
            processed = self.events.run_profiled(
                profile.component_buckets,
                max_events=MAX_EVENTS,
                stop_after_cycle=self._max_cycles,
            )
        else:
            processed = self.events.run(
                max_events=MAX_EVENTS,
                stop_after_cycle=self._max_cycles,
            )
        if self._max_cycles is not None and self.events.now > self._max_cycles:
            self._force_end()
        if self._end_cycle is None:
            self._force_end()
        self.controller.finalize()
        result = self._collect()
        if profile is not None:
            profile.record_run(
                events=processed,
                requests=self.controller.total_requests(),
                cycles=result.cycles,
                wall_seconds=time.perf_counter() - started,
            )
        return result

    def _periodic_validate(self, now: int) -> None:
        """Audit all controller invariants, then re-arm.

        Stops re-arming once the measured run has ended (``_end_cycle``
        set), so the event queue still drains and the run terminates at
        most ``validate_every`` cycles of queued events later.
        """
        from repro.sim.validation import validate_controller

        if self._end_cycle is not None:
            return
        validate_controller(self.controller)
        self.events.schedule(
            now + self._validate_every, self._periodic_validate
        )

    def _force_end(self) -> None:
        if self._end_cycle is None:
            self._end_cycle = max(self.events.now, 1)
            self._instruction_snapshot = [
                core.instructions_retired for core in self.cores
            ]
        for core in self.cores:
            core.stop()

    def _collect(self) -> SimulationResult:
        assert self._end_cycle is not None
        assert self._instruction_snapshot is not None
        cycles = max(self._end_cycle, 1)
        measured_cycles = max(cycles - self._warmup_cycle, 1)
        controller = self.controller
        programs = []
        for core_id, (name, _trace) in enumerate(self.traces):
            stats = controller.core_stats[core_id]
            instructions = self._instruction_snapshot[core_id]
            measured = instructions - self._warmup_instructions[core_id]
            programs.append(
                ProgramResult(
                    name=name,
                    core_id=core_id,
                    instructions=instructions,
                    ipc=max(measured, 0) / measured_cycles,
                    requests=stats.requests,
                    m1_fraction=stats.m1_fraction,
                    passes_completed=self.cores[core_id].passes_completed,
                    swaps_involving=stats.swaps_involving,
                )
            )
        energy = controller.energy.total_energy_j(cycles)
        return SimulationResult(
            policy=self.policy.name,
            cycles=cycles,
            programs=tuple(programs),
            total_requests=controller.total_requests(),
            total_swaps=controller.total_swaps,
            swap_fraction=controller.swap_fraction(),
            average_read_latency=controller.average_read_latency(),
            stc_hit_rate=controller.stc_hit_rate(),
            energy_joules=energy,
            energy_efficiency=controller.energy.efficiency_requests_per_joule(
                cycles
            ),
            policy_stats=PolicyStats.from_policy(self.policy),
            extra={"rsm_history": controller.rsm.history},
        )
