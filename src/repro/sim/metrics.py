"""Figures of merit (Section 4.3).

* Slowdown (Eq. 1): ``IPC_singleprogram / IPC_multiprogram``.
* Weighted speedup: ``sum over programs of 1 / slowdown``.
* Unfairness: ``max slowdown`` across the co-running programs.
* Energy efficiency: requests served per second per watt (reported
  directly by :class:`~repro.mem.power.EnergyMeter`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import SimulationError
from repro.sim.results import SimulationResult


def slowdown(ipc_single: float, ipc_multi: float) -> float:
    """Eq. (1): a program's slowdown under contention."""
    if ipc_single <= 0 or ipc_multi <= 0:
        raise SimulationError(
            f"non-positive IPC in slowdown: SP={ipc_single}, MP={ipc_multi}"
        )
    return ipc_single / ipc_multi


def weighted_speedup(slowdowns: Sequence[float]) -> float:
    """System performance: sum of reciprocal slowdowns (Eyerman & Eeckhout)."""
    if not slowdowns:
        raise SimulationError("weighted speedup of no programs")
    return sum(1.0 / s for s in slowdowns)


def unfairness(slowdowns: Sequence[float]) -> float:
    """Max slowdown across co-running programs (lower is fairer)."""
    if not slowdowns:
        raise SimulationError("unfairness of no programs")
    return max(slowdowns)


@dataclass(frozen=True)
class WorkloadMetrics:
    """Figures of merit for one multiprogrammed run under one policy."""

    policy: str
    program_names: tuple[str, ...]
    slowdowns: tuple[float, ...]
    weighted_speedup: float
    unfairness: float
    energy_efficiency: float
    average_read_latency: float
    swap_fraction: float

    @staticmethod
    def from_results(
        multi: SimulationResult, single_ipcs: Sequence[float]
    ) -> "WorkloadMetrics":
        """Combine a multiprogram run with per-program stand-alone IPCs."""
        if len(single_ipcs) != len(multi.programs):
            raise SimulationError(
                "one stand-alone IPC per co-running program required"
            )
        slowdowns = tuple(
            slowdown(sp, program.ipc)
            for sp, program in zip(single_ipcs, multi.programs)
        )
        return WorkloadMetrics(
            policy=multi.policy,
            program_names=tuple(p.name for p in multi.programs),
            slowdowns=slowdowns,
            weighted_speedup=weighted_speedup(slowdowns),
            unfairness=unfairness(slowdowns),
            energy_efficiency=multi.energy_efficiency,
            average_read_latency=multi.average_read_latency,
            swap_fraction=multi.swap_fraction,
        )
