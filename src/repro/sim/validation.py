"""Runtime invariant checking for simulations.

`validate_controller` audits a (possibly mid-run) controller for the
structural invariants the organization guarantees in hardware:

* every ST entry is a permutation (no block lost or duplicated);
* every QAC value fits its 2-bit field; every STC access counter fits
  its 6-bit field;
* the recorded M1 owner matches the frame owner of the block actually
  residing in M1;
* RSM counters are mutually consistent (M1-served <= total, self swaps
  <= total swaps);
* no frame is owned by a program whose private region belongs to
  someone else.

The checks are O(touched state), so tests and long experiments can call
them periodically; `ValidationError` messages carry the offending group
or program for debugging.
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.hybrid.memory import HybridMemoryController


class ValidationError(ReproError):
    """An architectural invariant was violated."""


def validate_controller(controller: HybridMemoryController) -> int:
    """Audit all invariants; returns the number of checks performed.

    Raises :class:`ValidationError` on the first violation.
    """
    checks = 0
    checks += _validate_st(controller)
    checks += _validate_stc(controller)
    checks += _validate_rsm(controller)
    checks += _validate_regions(controller)
    return checks


def _validate_st(controller: HybridMemoryController) -> int:
    st = controller.st
    group_size = st.group_size
    identity = list(range(group_size))
    checks = 0
    for group in st.touched_groups():
        entry = st.entry(group)
        if sorted(entry.loc_of_slot) != identity:
            raise ValidationError(f"group {group}: loc_of_slot not a permutation")
        if sorted(entry.slot_of_loc) != identity:
            raise ValidationError(f"group {group}: slot_of_loc not a permutation")
        for slot in range(group_size):
            if entry.slot_at(entry.location_of(slot)) != slot:
                raise ValidationError(
                    f"group {group}: forward/backward maps disagree at {slot}"
                )
        for slot, qac in enumerate(entry.qac):
            if not 0 <= qac <= 3:
                raise ValidationError(
                    f"group {group} slot {slot}: QAC {qac} out of 2-bit range"
                )
        expected_owner = controller.owner_of_slot(group, entry.m1_slot)
        if entry.m1_owner is not None and entry.m1_owner != expected_owner:
            raise ValidationError(
                f"group {group}: m1_owner {entry.m1_owner} != frame owner "
                f"{expected_owner}"
            )
        checks += 1
    return checks


def _validate_stc(controller: HybridMemoryController) -> int:
    maximum = controller.config.mdm.access_counter_max
    checks = 0
    for group, entry in controller.stc._array.items():
        if entry.group != group:
            raise ValidationError(f"STC key {group} holds entry {entry.group}")
        for slot, count in enumerate(entry.counters):
            if not 0 <= count <= maximum:
                raise ValidationError(
                    f"group {group} slot {slot}: access counter {count} "
                    f"exceeds {maximum}"
                )
        checks += 1
    return checks


def _validate_rsm(controller: HybridMemoryController) -> int:
    checks = 0
    for program, counters in enumerate(controller.rsm.counters):
        if counters.num_req_m1_p > counters.num_req_total_p:
            raise ValidationError(f"program {program}: M1_P > Total_P")
        if counters.num_req_m1_s > counters.num_req_total_s:
            raise ValidationError(f"program {program}: M1_S > Total_S")
        if counters.num_swap_self > counters.num_swap_total:
            raise ValidationError(f"program {program}: Swap_Self > Swap_Total")
        checks += 1
    return checks


def _validate_regions(controller: HybridMemoryController) -> int:
    allocator = controller.allocator
    region_map = controller.region_map
    address_map = controller.address_map
    checks = 0
    for frame, owner in allocator._owner.items():
        region = address_map.region_of_page(frame)
        if region_map.is_private(region) and not region_map.is_private_to(
            region, owner
        ):
            raise ValidationError(
                f"frame {frame} in private region {region} owned by "
                f"program {owner}"
            )
        checks += 1
    return checks
