"""Shared-memory result transport: frames, segments, and handles.

Workers used to pickle a full ``SimulationResult`` dict over the
process-pool pipe for every completed spec, which caps sweep size by
parent RAM and pipe serialization throughput.  Under the ``shm``
transport a worker instead *writes* its result into a per-process
segment file inside a shared mmap-backed directory (``/dev/shm`` when
available, the system tmpdir otherwise) and returns only a small
:class:`FrameHandle` over the pipe; the parent maps the segment lazily
and decodes exactly the frames it needs, when it needs them.

Frame format (DESIGN.md §17) — one length-prefixed frame per result::

    offset  size  field
    0       4     magic  b"PFRM"
    4       1     format version (FRAME_VERSION)
    5       64    spec cache key (ASCII hex, RunSpec.cache_key())
    69      8     payload length, unsigned big-endian
    77      32    SHA-256 of the payload (raw digest)
    109     N     payload: canonical JSON of SimulationResult.to_dict()

The payload serialization is *identical* to the disk cache's canonical
form, so a frame's digest equals :func:`repro.exec.cache.payload_digest`
of the same result — the transport and cache integrity contracts cannot
drift apart.  Frames are append-only and self-verifying: a frame that
fails any check (magic, version, key, length, digest, JSON decode)
raises :class:`FrameCorruptionError`, which the executor classifies as a
*transient* fault (the simulation itself is fine; only this copy of the
result is damaged) and re-attempts under the retry policy.

Transport choice is an execution detail, never a result detail: like
``mem_backend`` it is excluded from cache keys, and the pickle and shm
paths are byte-identical by contract (the chaos and parity suites assert
it).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Optional

from repro.common.errors import InvalidValueError, ReproError
from repro.sim.results import SimulationResult

#: Transport names accepted by the Executor / ``--transport``.
TRANSPORT_AUTO = "auto"
TRANSPORT_PICKLE = "pickle"
TRANSPORT_SHM = "shm"
TRANSPORTS = (TRANSPORT_AUTO, TRANSPORT_PICKLE, TRANSPORT_SHM)

FRAME_MAGIC = b"PFRM"
FRAME_VERSION = 1
#: Length of a spec cache key (SHA-256 hex).
KEY_LENGTH = 64
#: Fixed byte length of a frame header; the payload follows immediately.
HEADER_SIZE = 4 + 1 + KEY_LENGTH + 8 + 32


class FrameCorruptionError(ReproError, OSError):
    """A frame failed an integrity check on read.

    Derives from :class:`OSError` so the resilience taxonomy
    (DESIGN.md §15) classifies it as *retryable*: a damaged frame means
    this copy of the result was lost in transport — the deterministic
    simulation behind it is fine, so a bounded re-attempt converges to
    the clean result.
    """


def resolve_transport(transport: str, jobs: int) -> str:
    """Resolve ``auto`` to a concrete transport for this executor.

    ``auto`` picks ``shm`` for pooled execution (where the pipe is the
    bottleneck) and ``pickle`` for in-process serial runs (where there
    is no pipe to relieve).  Explicit names resolve to themselves;
    ``shm`` with ``jobs == 1`` round-trips results through a frame
    in-process, which is how the parity suite proves the encode/decode
    path byte-identical without a pool.
    """
    if transport not in TRANSPORTS:
        raise InvalidValueError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == TRANSPORT_AUTO:
        return TRANSPORT_SHM if jobs > 1 else TRANSPORT_PICKLE
    return transport


def encode_result(result: SimulationResult) -> bytes:
    """Canonical frame payload for one result.

    Byte-for-byte the serialization :func:`repro.exec.cache.
    payload_digest` hashes, so transport and cache integrity digests of
    the same result are equal.
    """
    text = json.dumps(
        result.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return text.encode("utf-8")


def decode_payload(payload: bytes) -> SimulationResult:
    """Invert :func:`encode_result`; corrupt bytes raise
    :class:`FrameCorruptionError`."""
    try:
        return SimulationResult.from_dict(json.loads(payload))
    except (ValueError, KeyError, TypeError) as error:
        raise FrameCorruptionError(
            f"frame payload failed to decode: {error}"
        ) from None


@dataclass(frozen=True, slots=True)
class FrameHandle:
    """The small picklable pointer a worker returns instead of a result.

    Everything the parent needs to locate and verify one frame: the
    segment file name (relative to the session directory — handles stay
    valid if the directory is moved), the frame's byte offset, the
    payload length, its SHA-256, the spec key, and the simulation's
    wall-clock seconds (measurement metadata, not part of the digest).
    """

    segment: str
    offset: int
    length: int
    sha256: str
    key: str
    elapsed: float


class FrameWriter:
    """Appends frames to this process's segment file.

    One writer per (directory, process): segment files are named by pid,
    so concurrent pool workers never share a file and frames never
    interleave.  ``tell()`` after each write keeps offsets exact even
    when a frame was deliberately cut short (chaos injection) — the next
    frame simply begins where the bytes actually ended.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.pid = os.getpid()
        self.segment = f"frames-{self.pid}.bin"
        self._file: IO[bytes] = open(self.directory / self.segment, "ab")

    def write(
        self,
        key: str,
        payload: bytes,
        elapsed: float = 0.0,
        keep: Optional[int] = None,
    ) -> FrameHandle:
        """Append one frame; returns its handle.

        ``keep`` (chaos injection only) truncates the *written* bytes to
        the first ``keep`` of the frame while the returned handle still
        describes the full frame — the on-disk picture of a worker
        killed (or a write lost) mid-frame.  The reader's integrity
        checks must catch it.
        """
        if len(key) != KEY_LENGTH:
            raise InvalidValueError(
                f"frame keys are {KEY_LENGTH}-char cache keys, got {key!r}"
            )
        digest = hashlib.sha256(payload).digest()
        header = (
            FRAME_MAGIC
            + bytes([FRAME_VERSION])
            + key.encode("ascii")
            + len(payload).to_bytes(8, "big")
            + digest
        )
        frame = header + payload
        offset = self._file.tell()
        written = frame if keep is None else frame[:max(0, keep)]
        self._file.write(written)
        self._file.flush()
        return FrameHandle(
            segment=self.segment,
            offset=offset,
            length=len(payload),
            sha256=digest.hex(),
            key=key,
            elapsed=elapsed,
        )

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass  # nothing further to release


#: Per-process writer registry: (directory, pid) -> writer.  Keyed by
#: pid so a forked worker never inherits (and appends through) its
#: parent's file object.
_WRITERS: dict[tuple[str, int], FrameWriter] = {}


def writer_for(directory: str | Path) -> FrameWriter:
    """This process's writer for ``directory`` (opened lazily, reused)."""
    key = (str(directory), os.getpid())
    writer = _WRITERS.get(key)
    if writer is None:
        writer = FrameWriter(directory)
        _WRITERS[key] = writer
    return writer


def close_writers(directory: str | Path) -> None:
    """Close (and forget) this process's writers for ``directory``."""
    prefix = str(directory)
    for key in [k for k in _WRITERS if k[0] == prefix]:
        _WRITERS.pop(key).close()


class FrameReader:
    """Lazily maps segment files and decodes single frames on demand.

    Segments are mapped with :mod:`mmap` and remapped only when a handle
    points past the currently mapped size (workers append concurrently).
    Reads are zero-copy up to the JSON decode of exactly one payload —
    the parent never materializes a segment, let alone a wave.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        #: segment name -> (mmap, mapped size)
        self._maps: dict[str, tuple[mmap.mmap, int]] = {}

    def _mapped(self, segment: str, needed: int) -> mmap.mmap:
        current = self._maps.get(segment)
        if current is not None and current[1] >= needed:
            return current[0]
        if current is not None:
            current[0].close()
            del self._maps[segment]
        path = self.directory / segment
        try:
            with open(path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size < needed:
                    raise FrameCorruptionError(
                        f"segment {segment} is {size} bytes but the frame "
                        f"extends to {needed} (truncated write)"
                    )
                mapped = mmap.mmap(
                    handle.fileno(), size, access=mmap.ACCESS_READ
                )
        except FrameCorruptionError:
            raise
        except OSError as error:
            raise FrameCorruptionError(
                f"segment {segment} unreadable: {error}"
            ) from None
        self._maps[segment] = (mapped, size)
        return mapped

    def read(self, handle: FrameHandle) -> tuple[SimulationResult, float]:
        """Decode one frame; any integrity violation raises
        :class:`FrameCorruptionError`."""
        end = handle.offset + HEADER_SIZE + handle.length
        mapped = self._mapped(handle.segment, end)
        start = handle.offset
        header = bytes(mapped[start:start + HEADER_SIZE])
        if header[:4] != FRAME_MAGIC:
            raise FrameCorruptionError(
                f"frame at {handle.segment}:{start} has no magic marker"
            )
        if header[4] != FRAME_VERSION:
            raise FrameCorruptionError(
                f"frame version {header[4]} != {FRAME_VERSION}"
            )
        key = header[5:5 + KEY_LENGTH].decode("ascii", errors="replace")
        if key != handle.key:
            raise FrameCorruptionError(
                f"frame key {key[:12]} does not match handle {handle.key[:12]}"
            )
        length = int.from_bytes(header[69:77], "big")
        digest = header[77:109].hex()
        if length != handle.length or digest != handle.sha256:
            raise FrameCorruptionError(
                "frame header disagrees with its handle (partial write)"
            )
        payload = bytes(mapped[start + HEADER_SIZE:end])
        if hashlib.sha256(payload).hexdigest() != handle.sha256:
            raise FrameCorruptionError(
                f"frame payload digest mismatch for {handle.key[:12]}"
            )
        return decode_payload(payload), handle.elapsed

    def close(self) -> None:
        for mapped, _ in self._maps.values():
            try:
                mapped.close()
            except (OSError, ValueError):
                pass  # already unmapped; nothing further to release
        self._maps.clear()


def shm_root() -> Optional[str]:
    """The shared-memory filesystem to put sessions on, when present.

    ``/dev/shm`` keeps frames purely in RAM-backed tmpfs on Linux;
    elsewhere (or when unwritable) sessions fall back to the system
    tmpdir, which is still mmap-backed — only the backing store differs.
    """
    root = "/dev/shm"
    if os.path.isdir(root) and os.access(root, os.W_OK):
        return root
    return None


class ShmSession:
    """One wave's transport arena: a directory of segment files.

    Created by the executor when a wave resolves to the ``shm``
    transport, shared with the workers by path (a short string over the
    pipe), and torn down — reader unmapped, parent-side writer closed,
    directory removed — when the wave finishes, successfully or not.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.reader = FrameReader(directory)

    @classmethod
    def create(cls, root: Optional[str] = None) -> "ShmSession":
        directory = tempfile.mkdtemp(
            prefix="profess-frames-", dir=root or shm_root()
        )
        return cls(directory)

    def bytes_written(self) -> int:
        """Total segment bytes currently in this session (diagnostics)."""
        total = 0
        try:
            with os.scandir(self.directory) as entries:
                for entry in entries:
                    if entry.name.startswith("frames-"):
                        total += entry.stat().st_size
        except OSError:
            return total
        return total

    def close(self) -> None:
        """Unmap, close the local writer, and remove the directory."""
        self.reader.close()
        close_writers(self.directory)
        shutil.rmtree(self.directory, ignore_errors=True)
