"""Streaming wave aggregation: fold results as completions land.

``Executor.run_wave(specs, reducer=...)`` stops materializing waves: the
reducer sees each unique spec's result exactly once — in *completion*
order, which parallel execution does not control — and the wave returns
only what the reducer accumulated.  The contract every reducer must
honour (and the property suite enforces for the figure accumulators) is
**order independence**: folding any permutation of the same completions,
with any interleaving of failures, must produce the same final state as
materializing the wave and reducing it afterwards.

Two building blocks live here:

* :class:`ListReducer` — the materializing reference: collects results
  into a dict, i.e. exactly what a reducer-less wave would have built.
  Tests compare any streaming accumulator against it.
* :class:`GroupReducer` — refcounted grouping for figure drivers.  A
  figure cell (one workload × policy) needs a small *set* of results
  (the mix run plus each program's stand-alone reference) before it can
  compute metrics; the reducer holds a completed result only while some
  unfinished group still needs it, releases it with the last group, and
  fires ``group_completed``/``group_failed`` hooks the moment a group
  resolves.  Peak parent memory is bounded by the widest in-progress
  group frontier, not the wave.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.common.errors import InvalidValueError
from repro.exec.resilience import RunFailure
from repro.exec.spec import RunSpec
from repro.sim.results import SimulationResult


class WaveReducer(Protocol):
    """What :meth:`Executor.run_wave` needs from a reducer."""

    def fold(
        self, key: str, spec: RunSpec, result: SimulationResult
    ) -> None:
        """Absorb one unique spec's result (called exactly once per key,
        in completion order — cache hits included)."""

    def fold_failure(self, failure: RunFailure) -> None:
        """Absorb one spec's terminal failure (attempts exhausted)."""


class ListReducer:
    """The materializing reference reducer: keeps everything.

    Equivalent to a reducer-less wave; exists so tests can state the
    streaming contract as ``stream(X) == reduce(materialize(X))``.
    """

    def __init__(self) -> None:
        self.by_key: dict[str, SimulationResult] = {}
        self.failures: list[RunFailure] = []

    def fold(
        self, key: str, spec: RunSpec, result: SimulationResult
    ) -> None:
        self.by_key[key] = result

    def fold_failure(self, failure: RunFailure) -> None:
        self.failures.append(failure)


class GroupReducer:
    """Folds a wave into named groups, releasing results eagerly.

    Usage: declare each group's required keys up front with
    :meth:`add_group` (a key may belong to many groups — stand-alone
    reference runs usually do), then hand the reducer to ``run_wave``.
    When the last key of a group lands, :meth:`group_completed` fires
    with that group's results and every result no other unfinished group
    needs is dropped.  When any key of a group *fails*,
    :meth:`group_failed` fires once and the group's remaining interest
    is released immediately.

    Subclasses override the two hooks; both must be order-independent
    (the group id and its results dict fully determine the outcome).
    """

    def __init__(self) -> None:
        #: group id -> keys still missing.
        self._waiting: dict[str, set[str]] = {}
        #: group id -> all keys the group declared.
        self._members: dict[str, tuple[str, ...]] = {}
        #: key -> ids of unfinished groups that still need it.
        self._interest: dict[str, set[str]] = {}
        #: completed results currently held for unfinished groups.
        self._held: dict[str, SimulationResult] = {}
        #: keys that already failed terminally (poison future groups).
        self._failed_keys: dict[str, RunFailure] = {}
        self.completed_groups: list[str] = []
        self.failed_groups: dict[str, RunFailure] = {}

    # ------------------------------------------------------------------
    def add_group(self, group_id: str, keys: list[str]) -> None:
        """Declare one group and the result keys it needs.

        Safe to call before or during the wave (a figure driver declares
        everything up front).  Keys that already landed count as present
        immediately; keys that already failed poison the group at once.
        """
        if group_id in self._members:
            raise InvalidValueError(f"group {group_id!r} declared twice")
        unique = tuple(dict.fromkeys(keys))
        self._members[group_id] = unique
        poisoned: Optional[RunFailure] = None
        for key in unique:
            if key in self._failed_keys and poisoned is None:
                poisoned = self._failed_keys[key]
        if poisoned is not None:
            self.failed_groups[group_id] = poisoned
            self.group_failed(group_id, poisoned)
            return
        missing = {key for key in unique if key not in self._held}
        for key in unique:
            self._interest.setdefault(key, set()).add(group_id)
        if missing:
            self._waiting[group_id] = missing
        else:
            self._resolve(group_id)

    @property
    def held_count(self) -> int:
        """Results currently retained (the memory frontier; tests pin
        that this stays far below the wave size)."""
        return len(self._held)

    # ------------------------------------------------------------------
    # WaveReducer interface
    # ------------------------------------------------------------------
    def fold(
        self, key: str, spec: RunSpec, result: SimulationResult
    ) -> None:
        if key not in self._interest:
            return  # no declared group needs this key
        self._held[key] = result
        for group_id in list(self._interest.get(key, ())):
            missing = self._waiting.get(group_id)
            if missing is None:
                continue
            missing.discard(key)
            if not missing:
                del self._waiting[group_id]
                self._resolve(group_id)

    def fold_failure(self, failure: RunFailure) -> None:
        key = failure.key
        self._failed_keys[key] = failure
        for group_id in list(self._interest.get(key, ())):
            if group_id in self.failed_groups:
                continue
            self._waiting.pop(group_id, None)
            self.failed_groups[group_id] = failure
            self._release(group_id)
            self.group_failed(group_id, failure)

    # ------------------------------------------------------------------
    def _resolve(self, group_id: str) -> None:
        results = {key: self._held[key] for key in self._members[group_id]}
        self.completed_groups.append(group_id)
        self._release(group_id)
        self.group_completed(group_id, results)

    def _release(self, group_id: str) -> None:
        """Drop this group's interest; free results nobody else needs."""
        for key in self._members[group_id]:
            owners = self._interest.get(key)
            if owners is None:
                continue
            owners.discard(group_id)
            if not owners:
                del self._interest[key]
                self._held.pop(key, None)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def group_completed(
        self, group_id: str, results: dict[str, SimulationResult]
    ) -> None:
        """All of ``group_id``'s keys landed; ``results`` maps each
        declared key to its result.  Override to compute metrics."""

    def group_failed(self, group_id: str, failure: RunFailure) -> None:
        """Some key the group needs failed terminally; fires once per
        group.  Override to record FAILED rows."""
