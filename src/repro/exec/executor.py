"""Execution engine: fan :class:`RunSpec`\\ s out over processes.

The :class:`Executor` is the single funnel through which simulations
run.  For every batch it:

1. deduplicates specs by content hash (a figure often requests the same
   stand-alone reference run many times),
2. serves what it can from the :class:`~repro.exec.cache.ResultCache`,
3. fans the remainder out over a ``ProcessPoolExecutor`` when
   ``jobs > 1`` (falling back to in-process serial execution when
   ``jobs == 1`` or when there is only one run),
4. persists fresh results to the cache and reports each completion
   through an optional callback, and
5. returns results in the exact order the specs were submitted,
   regardless of completion order.

Simulations are deterministic functions of their spec, so a parallel
batch is bit-identical to a serial one — only wall-clock time changes.

Fault isolation (DESIGN.md §15): one crashing worker, one hung spec, or
one raising simulation never takes the wave down.  Worker exceptions are
wrapped with spec provenance (:class:`~repro.exec.resilience.
WorkerFailure`), transient faults — worker death, per-spec wall-clock
timeouts, ``OSError`` — are re-attempted under a deterministic
:class:`~repro.exec.resilience.RetryPolicy`, deterministic failures are
captured as structured :class:`~repro.exec.resilience.RunFailure`
records, and every submit/complete/fail is journalled so an interrupted
sweep resumes instead of restarting.  :meth:`Executor.run_wave` returns
the partial wave (results + failures); :meth:`Executor.run_many` keeps
the strict contract and raises :class:`~repro.exec.resilience.
SweepFailure` when anything ultimately failed.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.errors import InvalidValueError
from repro.exec.cache import ResultCache
from repro.exec.chaos import ChaosPlan, apply_chaos
from repro.exec.resilience import (
    RetryPolicy,
    RunFailure,
    RunJournal,
    SpecTimeoutError,
    SweepFailure,
    WorkerFailure,
    failure_from_error,
)
from repro.exec.spec import RunSpec, build_traces
from repro.sim.results import SimulationResult

#: Result provenance labels reported via :class:`RunEvent`.
SOURCE_CACHE = "cache"
SOURCE_SERIAL = "serial"
SOURCE_POOL = "pool"

#: Seconds between deadline sweeps while draining a pool round.
_POLL_INTERVAL = 0.1


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one spec's simulation in the current process.

    Module-level (picklable) so process-pool workers can receive it; the
    spec is self-contained, so no other state crosses the boundary.
    """
    from repro.sim.engine import SimulationDriver

    driver = SimulationDriver(
        spec.config,
        spec.policy,
        build_traces(spec),
        seed=spec.seed,
        track_rsm_regions=spec.track_rsm_regions,
        validate_every=spec.validate_every,
    )
    return driver.run()


def _timed_execute(spec: RunSpec) -> tuple[SimulationResult, float]:
    started = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - started


def _guarded_execute(
    spec: RunSpec,
    run_id: str,
    attempt: int,
    chaos: Optional[ChaosPlan] = None,
    in_worker: bool = True,
) -> tuple[SimulationResult, float]:
    """The pool task: chaos hook + provenance-preserving exception wrap.

    Any exception crossing the pool pipe is re-raised as a pickle-safe
    :class:`WorkerFailure` carrying the spec's cache key and the run id —
    a worker raise never arrives anonymous.  ``from None``: exception
    chains do not survive pickling, so the original is flattened into the
    wrapper's fields instead.
    """
    key = spec.cache_key()
    try:
        if chaos is not None:
            apply_chaos(chaos, key, attempt, in_worker=in_worker)
        return _timed_execute(spec)
    except Exception as error:
        raise WorkerFailure.wrap(key, run_id, spec.describe(), error) from None


@dataclass(frozen=True)
class RunEvent:
    """One completed run, as reported to progress callbacks."""

    spec: RunSpec
    result: SimulationResult
    #: Simulation wall-clock seconds (0 for cache hits).
    elapsed: float
    #: Where the result came from: "cache", "serial", or "pool".
    source: str


@dataclass
class WaveResult:
    """Outcome of one fault-isolated batch (:meth:`Executor.run_wave`)."""

    #: Results aligned 1:1 with the submitted specs; None where the
    #: spec's run ultimately failed.
    results: list[Optional[SimulationResult]]
    #: One record per distinct failed spec (attempts exhausted).
    failures: list[RunFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> list[SimulationResult]:
        """The strict view: all results, or :class:`SweepFailure`."""
        if self.failures:
            raise SweepFailure(self.failures)
        return self.results  # type: ignore[return-value]


@dataclass
class _Flight:
    """One in-flight pool attempt."""

    key: str
    spec: RunSpec
    attempt: int
    #: Wall-clock deadline (monotonic), stamped when the future is first
    #: observed running — queue time never counts against the budget.
    deadline: Optional[float] = None


class Executor:
    """Runs batches of specs with caching, parallelism, and isolation."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        on_run: Optional[Callable[[RunEvent], None]] = None,
        retry: Optional[RetryPolicy] = None,
        run_timeout: Optional[float] = None,
        journal: Optional[RunJournal] = None,
        fail_fast: bool = False,
        chaos: Optional[ChaosPlan] = None,
        run_id: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise InvalidValueError("jobs must be >= 1")
        if run_timeout is not None and run_timeout <= 0:
            raise InvalidValueError("run_timeout must be > 0 (or None)")
        self.jobs = jobs
        self.cache = cache
        self.on_run = on_run
        self.retry = retry if retry is not None else RetryPolicy(retries=0)
        self.run_timeout = run_timeout
        self.journal = journal
        self.fail_fast = fail_fast
        self.chaos = chaos
        #: Identifies this executor's appends in a shared journal.
        self.run_id = run_id or f"run-{os.getpid()}-{int(time.time())}"
        #: Simulations actually executed (cache hits excluded).
        self.executed = 0
        #: Attempts that failed and were re-queued (retry traffic).
        self.retried = 0
        #: Every spec that ultimately failed, across this executor's life.
        self.failures: list[RunFailure] = []

    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> SimulationResult:
        """Run (or fetch) a single spec."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[RunSpec]) -> list[SimulationResult]:
        """Run a batch; results align 1:1 with the submitted specs.

        Strict: raises :class:`SweepFailure` if any spec still failed
        after retries.  Use :meth:`run_wave` to consume partial waves.
        """
        return self.run_wave(specs).raise_on_failure()

    def run_wave(self, specs: Sequence[RunSpec]) -> WaveResult:
        """Run a batch with fault isolation; failures never propagate.

        Every spec either yields a result (cache, serial, or pool) or a
        structured :class:`RunFailure` after its attempt budget runs out;
        one bad spec cannot take down the others' work.
        """
        specs = list(specs)
        by_key: dict[str, SimulationResult] = {}
        # Deduplicate while preserving first-appearance order so the
        # execution schedule (and therefore any progress output) is
        # deterministic.
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.cache_key(), spec)
        pending: list[tuple[str, RunSpec]] = []
        for key, spec in unique.items():
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                by_key[key] = cached
                self._journal_completed(key, SOURCE_CACHE, 0.0)
                self._notify(RunEvent(spec, cached, 0.0, SOURCE_CACHE))
            else:
                pending.append((key, spec))
        failures: list[RunFailure] = []
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._run_pool(pending, by_key, failures)
            else:
                self._run_serial(pending, by_key, failures)
        self.failures.extend(failures)
        return WaveResult(
            results=[by_key.get(spec.cache_key()) for spec in specs],
            failures=failures,
        )

    # ------------------------------------------------------------------
    # Completion / failure bookkeeping
    # ------------------------------------------------------------------
    def _complete(
        self,
        key: str,
        spec: RunSpec,
        result: SimulationResult,
        elapsed: float,
        source: str,
        by_key: dict[str, SimulationResult],
    ) -> None:
        by_key[key] = result
        self.executed += 1
        if self.cache is not None:
            self.cache.put(spec, result)
        self._journal_completed(key, source, elapsed)
        self._notify(RunEvent(spec, result, elapsed, source))

    def _fail(
        self,
        key: str,
        spec: RunSpec,
        error: BaseException,
        attempt: int,
        failures: list[RunFailure],
    ) -> None:
        failure = failure_from_error(key, spec.describe(), error, attempt)
        failures.append(failure)
        if self.journal is not None:
            self.journal.failed(failure, self.run_id)
        if self.fail_fast:
            # The wave is aborted before run_wave can fold the local
            # failure list in, so record it here for run_stats/reports.
            self.failures.append(failure)
            raise SweepFailure([failure])

    def _notify(self, event: RunEvent) -> None:
        if self.on_run is not None:
            self.on_run(event)

    def _journal_submitted(self, key: str, spec: RunSpec, attempt: int) -> None:
        if self.journal is not None:
            self.journal.submitted(key, self.run_id, attempt, spec.describe())

    def _journal_completed(self, key: str, source: str, elapsed: float) -> None:
        if self.journal is not None:
            self.journal.completed(key, self.run_id, source, elapsed)

    def _backoff(self, key: str, attempt: int) -> None:
        delay = self.retry.backoff(key, attempt)
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------
    # Serial execution (with the same retry/failure contract)
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        pending: Sequence[tuple[str, RunSpec]],
        by_key: dict[str, SimulationResult],
        failures: list[RunFailure],
    ) -> None:
        for key, spec in pending:
            attempt = 1
            while True:
                self._journal_submitted(key, spec, attempt)
                try:
                    result, elapsed = _guarded_execute(
                        spec, self.run_id, attempt, self.chaos, in_worker=False
                    )
                except WorkerFailure as error:
                    if self.retry.should_retry(error, attempt):
                        self.retried += 1
                        self._backoff(key, attempt)
                        attempt += 1
                        continue
                    self._fail(key, spec, error, attempt, failures)
                    break
                self._complete(
                    key, spec, result, elapsed, SOURCE_SERIAL, by_key
                )
                break

    # ------------------------------------------------------------------
    # Pool execution: rounds of submit/drain with worker replacement
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        pending: Sequence[tuple[str, RunSpec]],
        by_key: dict[str, SimulationResult],
        failures: list[RunFailure],
    ) -> None:
        """Fault-isolated parallel execution.

        Work proceeds in *rounds*: each round owns one fresh
        ``ProcessPoolExecutor``, submits everything queued, and drains
        completions.  A broken pool (killed worker) or an expired
        per-spec deadline ends the round — completed-but-unharvested
        futures are salvaged first, transient casualties are re-queued
        under the retry policy, the pool's workers are replaced, and the
        next round continues.  Exhausted attempt budgets become
        :class:`RunFailure` records, never wave aborts.
        """
        queue: deque[tuple[str, RunSpec, int]] = deque(
            (key, spec, 1) for key, spec in pending
        )
        while queue:
            round_items = list(queue)
            queue.clear()
            try:
                self._pool_round(round_items, by_key, failures, queue)
            except SweepFailure:
                raise  # fail-fast propagates out of the wave
            except BrokenProcessPool as error:
                # The pool broke outside the drain loop (e.g. at submit
                # time): everything still queued for this round is a
                # transient casualty of the same worker death.
                for key, spec, attempt in round_items:
                    if key in by_key:
                        continue
                    self._requeue_or_fail(
                        key, spec, attempt, error, queue, failures
                    )

    def _pool_round(
        self,
        items: list[tuple[str, RunSpec, int]],
        by_key: dict[str, SimulationResult],
        failures: list[RunFailure],
        queue: deque[tuple[str, RunSpec, int]],
    ) -> None:
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        inflight: dict[Future, _Flight] = {}
        replaced_workers = False
        try:
            for key, spec, attempt in items:
                self._journal_submitted(key, spec, attempt)
                future = pool.submit(
                    _guarded_execute, spec, self.run_id, attempt, self.chaos
                )
                inflight[future] = _Flight(key, spec, attempt)
            while inflight:
                done, _ = wait(
                    set(inflight),
                    timeout=_POLL_INTERVAL if self.run_timeout else None,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    flight = inflight.pop(future)
                    broken |= self._harvest(future, flight, by_key, queue,
                                            failures)
                if broken:
                    # A worker died: every remaining future is (or will
                    # be) poisoned with BrokenProcessPool.  Drain what
                    # already finished, classify the rest as transient
                    # casualties, and end the round for a fresh pool.
                    self._drain_broken(inflight, by_key, queue, failures)
                    return
                if self._expire_deadlines(inflight, queue, failures):
                    # A spec blew its wall-clock budget.  The stuck
                    # worker cannot be cancelled individually, so the
                    # round's workers are terminated and replaced; other
                    # in-flight specs re-queue without burning attempts.
                    self._abandon_round(pool, inflight, by_key, queue,
                                        failures)
                    replaced_workers = True
                    return
        finally:
            if replaced_workers:
                _terminate_workers(pool)
            pool.shutdown(wait=not replaced_workers, cancel_futures=True)

    def _harvest(
        self,
        future: Future,
        flight: _Flight,
        by_key: dict[str, SimulationResult],
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> bool:
        """Absorb one finished future; True when the pool is broken."""
        if future.cancelled():
            queue.append((flight.key, flight.spec, flight.attempt))
            return False
        error = future.exception()
        if error is None:
            result, elapsed = future.result()
            self._complete(
                flight.key, flight.spec, result, elapsed, SOURCE_POOL, by_key
            )
            return False
        self._requeue_or_fail(
            flight.key, flight.spec, flight.attempt, error, queue, failures
        )
        return isinstance(error, BrokenProcessPool)

    def _requeue_or_fail(
        self,
        key: str,
        spec: RunSpec,
        attempt: int,
        error: BaseException,
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> None:
        if self.retry.should_retry(error, attempt):
            self.retried += 1
            self._backoff(key, attempt)
            queue.append((key, spec, attempt + 1))
        else:
            self._fail(key, spec, error, attempt, failures)

    def _drain_broken(
        self,
        inflight: dict[Future, _Flight],
        by_key: dict[str, SimulationResult],
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> None:
        """After a worker death: salvage completions, re-queue the rest.

        Completed-but-unharvested futures still hold real results — they
        are counted under ``SOURCE_POOL``, not re-run.  Unfinished
        futures carry (or will carry) ``BrokenProcessPool``; they re-
        enter the queue under the retry policy.
        """
        for future, flight in list(inflight.items()):
            if future.done():
                self._harvest(future, flight, by_key, queue, failures)
            else:
                self._requeue_or_fail(
                    flight.key,
                    flight.spec,
                    flight.attempt,
                    BrokenProcessPool(
                        "worker process died before this spec finished"
                    ),
                    queue,
                    failures,
                )
        inflight.clear()

    def _expire_deadlines(
        self,
        inflight: dict[Future, _Flight],
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> bool:
        """Stamp deadlines on newly running futures; expire overdue ones.

        Returns True when at least one spec timed out (the caller must
        then replace the round's workers).
        """
        if self.run_timeout is None:
            return False
        now = time.monotonic()
        expired = False
        for future, flight in list(inflight.items()):
            if flight.deadline is None:
                if future.running():
                    flight.deadline = now + self.run_timeout
                continue
            if now < flight.deadline:
                continue
            inflight.pop(future)
            future.cancel()
            expired = True
            self._requeue_or_fail(
                flight.key,
                flight.spec,
                flight.attempt,
                SpecTimeoutError(
                    f"spec {flight.key[:12]} exceeded the "
                    f"{self.run_timeout:.1f}s wall-clock budget "
                    f"(attempt {flight.attempt})"
                ),
                queue,
                failures,
            )
        return expired

    def _abandon_round(
        self,
        pool: ProcessPoolExecutor,
        inflight: dict[Future, _Flight],
        by_key: dict[str, SimulationResult],
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> None:
        """Salvage and re-queue around a worker-replacing teardown."""
        for future, flight in list(inflight.items()):
            if future.done():
                self._harvest(future, flight, by_key, queue, failures)
            else:
                # Not timed out itself: a casualty of the teardown, so
                # its attempt is not burned.
                future.cancel()
                queue.append((flight.key, flight.spec, flight.attempt))
        inflight.clear()


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's worker processes (the hung-spec escape hatch).

    ``ProcessPoolExecutor`` has no public per-worker cancellation; when a
    spec must be abandoned mid-run the only safe move is to terminate the
    round's workers and let the next round spawn fresh ones.  Touches the
    private ``_processes`` map — guarded so a stdlib layout change
    degrades to leaking the round's workers rather than crashing.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, AttributeError):
            pass  # already dead, or not a real process object
