"""Execution engine: fan :class:`RunSpec`\\ s out over processes.

The :class:`Executor` is the single funnel through which simulations
run.  For every batch it:

1. deduplicates specs by content hash (a figure often requests the same
   stand-alone reference run many times),
2. serves what it can from the :class:`~repro.exec.cache.ResultCache`,
3. fans the remainder out over a ``ProcessPoolExecutor`` when
   ``jobs > 1`` (falling back to in-process serial execution when
   ``jobs == 1`` or when there is only one run),
4. persists fresh results to the cache and reports each completion
   through an optional callback, and
5. returns results in the exact order the specs were submitted,
   regardless of completion order.

Simulations are deterministic functions of their spec, so a parallel
batch is bit-identical to a serial one — only wall-clock time changes.

Fault isolation (DESIGN.md §15): one crashing worker, one hung spec, or
one raising simulation never takes the wave down.  Worker exceptions are
wrapped with spec provenance (:class:`~repro.exec.resilience.
WorkerFailure`), transient faults — worker death, per-spec wall-clock
timeouts, ``OSError`` — are re-attempted under a deterministic
:class:`~repro.exec.resilience.RetryPolicy`, deterministic failures are
captured as structured :class:`~repro.exec.resilience.RunFailure`
records, and every submit/complete/fail is journalled so an interrupted
sweep resumes instead of restarting.  :meth:`Executor.run_wave` returns
the partial wave (results + failures); :meth:`Executor.run_many` keeps
the strict contract and raises :class:`~repro.exec.resilience.
SweepFailure` when anything ultimately failed.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.errors import InvalidValueError
from repro.exec.cache import ResultCache
from repro.exec.chaos import (
    ACTION_FRAME_CORRUPT,
    ACTION_FRAME_KILL,
    ChaosKilledError,
    ChaosPlan,
    apply_chaos,
)
from repro.exec.resilience import (
    RetryPolicy,
    RunFailure,
    RunJournal,
    SpecTimeoutError,
    SweepFailure,
    WorkerFailure,
    failure_from_error,
)
from repro.exec.spec import RunSpec, build_traces
from repro.exec.streaming import WaveReducer
from repro.exec.transport import (
    HEADER_SIZE,
    TRANSPORT_SHM,
    FrameCorruptionError,
    FrameHandle,
    ShmSession,
    encode_result,
    resolve_transport,
    writer_for,
)
from repro.sim.results import SimulationResult

#: Result provenance labels reported via :class:`RunEvent`.
SOURCE_CACHE = "cache"
SOURCE_SERIAL = "serial"
SOURCE_POOL = "pool"

#: Seconds between deadline sweeps while draining a pool round.
_POLL_INTERVAL = 0.1


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one spec's simulation in the current process.

    Module-level (picklable) so process-pool workers can receive it; the
    spec is self-contained, so no other state crosses the boundary.
    """
    from repro.sim.engine import SimulationDriver

    driver = SimulationDriver(
        spec.config,
        spec.policy,
        build_traces(spec),
        seed=spec.seed,
        track_rsm_regions=spec.track_rsm_regions,
        validate_every=spec.validate_every,
    )
    return driver.run()


def _timed_execute(spec: RunSpec) -> tuple[SimulationResult, float]:
    started = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - started


def _guarded_execute(
    spec: RunSpec,
    run_id: str,
    attempt: int,
    chaos: Optional[ChaosPlan] = None,
    in_worker: bool = True,
) -> tuple[SimulationResult, float]:
    """The pool task: chaos hook + provenance-preserving exception wrap.

    Any exception crossing the pool pipe is re-raised as a pickle-safe
    :class:`WorkerFailure` carrying the spec's cache key and the run id —
    a worker raise never arrives anonymous.  ``from None``: exception
    chains do not survive pickling, so the original is flattened into the
    wrapper's fields instead.
    """
    key = spec.cache_key()
    try:
        if chaos is not None:
            apply_chaos(chaos, key, attempt, in_worker=in_worker)
        return _timed_execute(spec)
    except Exception as error:
        raise WorkerFailure.wrap(key, run_id, spec.describe(), error) from None


def _guarded_execute_frame(
    spec: RunSpec,
    run_id: str,
    attempt: int,
    directory: str,
    chaos: Optional[ChaosPlan] = None,
    in_worker: bool = True,
) -> FrameHandle:
    """The shm-transport pool task: run, then *write* instead of return.

    The result is encoded into a frame in this process's segment file
    under ``directory`` and only the :class:`FrameHandle` crosses the
    pool pipe.  Frame-level chaos is injected here, after the simulation
    itself succeeded: a frame-kill writes half a frame and dies (the
    on-disk picture of a worker lost mid-write — the handle never
    arrives), a frame-corrupt returns an intact handle over truncated
    bytes (the parent's digest check must refuse them).
    """
    key = spec.cache_key()
    try:
        if chaos is not None:
            apply_chaos(chaos, key, attempt, in_worker=in_worker)
        result, elapsed = _timed_execute(spec)
        payload = encode_result(result)
        writer = writer_for(directory)
        action = (
            chaos.frame_action_for(key, attempt)
            if chaos is not None
            else None
        )
        if action == ACTION_FRAME_KILL:
            writer.write(
                key, payload, elapsed,
                keep=HEADER_SIZE + len(payload) // 2,
            )
            if in_worker:
                os._exit(3)
            raise ChaosKilledError(
                f"chaos: worker killed mid-frame-write for {key[:12]} "
                f"attempt {attempt}"
            )
        keep: Optional[int] = None
        if action == ACTION_FRAME_CORRUPT:
            # Commit the handle but lose the payload's tail bytes.
            keep = HEADER_SIZE + max(0, len(payload) - 7)
        return writer.write(key, payload, elapsed, keep=keep)
    except Exception as error:
        raise WorkerFailure.wrap(key, run_id, spec.describe(), error) from None


@dataclass(frozen=True)
class RunEvent:
    """One completed run, as reported to progress callbacks."""

    spec: RunSpec
    result: SimulationResult
    #: Simulation wall-clock seconds (0 for cache hits).
    elapsed: float
    #: Where the result came from: "cache", "serial", or "pool".
    source: str


@dataclass
class WaveResult:
    """Outcome of one fault-isolated batch (:meth:`Executor.run_wave`)."""

    #: Results aligned 1:1 with the submitted specs; None where the
    #: spec's run ultimately failed.
    results: list[Optional[SimulationResult]]
    #: One record per distinct failed spec (attempts exhausted).
    failures: list[RunFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> list[SimulationResult]:
        """The strict view: all results, or :class:`SweepFailure`."""
        if self.failures:
            raise SweepFailure(self.failures)
        return self.results  # type: ignore[return-value]


@dataclass
class _Flight:
    """One in-flight pool attempt."""

    key: str
    spec: RunSpec
    attempt: int
    #: Wall-clock deadline (monotonic), stamped when the future is first
    #: observed running — queue time never counts against the budget.
    deadline: Optional[float] = None


class _WaveSink:
    """Where one wave's completions land: materialize or stream.

    Without a reducer, results accumulate in ``by_key`` exactly as the
    materializing wave always did.  With one, each unique key is folded
    the moment it completes and *nothing is retained* — ``done`` (a set
    of keys) is the only per-spec state, so parent memory no longer
    scales with result size.  Either way a key is absorbed at most once,
    which is the exactly-once guarantee reducers rely on (a salvaged
    future and its re-queued twin cannot both fold).
    """

    def __init__(self, reducer: Optional[WaveReducer] = None) -> None:
        self.reducer = reducer
        self.by_key: dict[str, SimulationResult] = {}
        self.done: set[str] = set()

    def add(
        self, key: str, spec: RunSpec, result: SimulationResult
    ) -> None:
        if key in self.done:
            return
        self.done.add(key)
        if self.reducer is not None:
            self.reducer.fold(key, spec, result)
        else:
            self.by_key[key] = result

    def __contains__(self, key: object) -> bool:
        return key in self.done

    def get(self, key: str) -> Optional[SimulationResult]:
        return self.by_key.get(key)


class Executor:
    """Runs batches of specs with caching, parallelism, and isolation."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        on_run: Optional[Callable[[RunEvent], None]] = None,
        retry: Optional[RetryPolicy] = None,
        run_timeout: Optional[float] = None,
        journal: Optional[RunJournal] = None,
        fail_fast: bool = False,
        chaos: Optional[ChaosPlan] = None,
        run_id: Optional[str] = None,
        transport: str = "auto",
    ) -> None:
        if jobs < 1:
            raise InvalidValueError("jobs must be >= 1")
        if run_timeout is not None and run_timeout <= 0:
            raise InvalidValueError("run_timeout must be > 0 (or None)")
        # Validate the name eagerly; `auto` resolves per wave.  Like
        # `mem_backend`, transport is an execution detail: it never
        # enters cache keys and never changes result bytes.
        resolve_transport(transport, jobs)
        self.jobs = jobs
        self.transport = transport
        self.cache = cache
        self.on_run = on_run
        self.retry = retry if retry is not None else RetryPolicy(retries=0)
        self.run_timeout = run_timeout
        self.journal = journal
        self.fail_fast = fail_fast
        self.chaos = chaos
        #: Identifies this executor's appends in a shared journal.
        self.run_id = run_id or f"run-{os.getpid()}-{int(time.time())}"
        #: Simulations actually executed (cache hits excluded).
        self.executed = 0
        #: Attempts that failed and were re-queued (retry traffic).
        self.retried = 0
        #: Every spec that ultimately failed, across this executor's life.
        self.failures: list[RunFailure] = []
        #: The active wave's shm session (None under the pickle path).
        self._session: Optional[ShmSession] = None

    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> SimulationResult:
        """Run (or fetch) a single spec."""
        return self.run_many([spec])[0]

    def run_many(
        self,
        specs: Sequence[RunSpec],
        reducer: Optional[WaveReducer] = None,
    ) -> list[SimulationResult]:
        """Run a batch; results align 1:1 with the submitted specs.

        Strict: raises :class:`SweepFailure` if any spec still failed
        after retries.  Use :meth:`run_wave` to consume partial waves.
        With a ``reducer`` the returned list is all-``None`` placeholders
        (the reducer holds the wave's substance).
        """
        return self.run_wave(specs, reducer=reducer).raise_on_failure()

    def run_wave(
        self,
        specs: Sequence[RunSpec],
        reducer: Optional[WaveReducer] = None,
    ) -> WaveResult:
        """Run a batch with fault isolation; failures never propagate.

        Every spec either yields a result (cache, serial, or pool) or a
        structured :class:`RunFailure` after its attempt budget runs out;
        one bad spec cannot take down the others' work.

        With a ``reducer`` the wave *streams*: each unique spec's result
        is folded exactly once as it completes (cache hits included),
        every terminal failure is folded through ``fold_failure`` before
        returning, and ``WaveResult.results`` holds ``None`` placeholders
        — the parent never retains the wave.
        """
        specs = list(specs)
        sink = _WaveSink(reducer)
        # Deduplicate while preserving first-appearance order so the
        # execution schedule (and therefore any progress output) is
        # deterministic.
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.cache_key(), spec)
        pending: list[tuple[str, RunSpec]] = []
        for key, spec in unique.items():
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                sink.add(key, spec, cached)
                self._journal_completed(key, SOURCE_CACHE, 0.0)
                self._notify(RunEvent(spec, cached, 0.0, SOURCE_CACHE))
            else:
                pending.append((key, spec))
        failures: list[RunFailure] = []
        if pending:
            use_shm = (
                resolve_transport(self.transport, self.jobs) == TRANSPORT_SHM
            )
            self._session = ShmSession.create() if use_shm else None
            try:
                if self.jobs > 1 and len(pending) > 1:
                    self._run_pool(pending, sink, failures)
                else:
                    self._run_serial(pending, sink, failures)
            finally:
                session, self._session = self._session, None
                if session is not None:
                    session.close()
        self.failures.extend(failures)
        if reducer is not None:
            for failure in failures:
                reducer.fold_failure(failure)
        return WaveResult(
            results=[sink.get(spec.cache_key()) for spec in specs],
            failures=failures,
        )

    # ------------------------------------------------------------------
    # Completion / failure bookkeeping
    # ------------------------------------------------------------------
    def _complete(
        self,
        key: str,
        spec: RunSpec,
        result: SimulationResult,
        elapsed: float,
        source: str,
        sink: _WaveSink,
    ) -> None:
        sink.add(key, spec, result)
        self.executed += 1
        if self.cache is not None:
            self.cache.put(spec, result)
        self._journal_completed(key, source, elapsed)
        self._notify(RunEvent(spec, result, elapsed, source))

    def _decode(
        self, spec: RunSpec, handle: FrameHandle
    ) -> tuple[SimulationResult, float]:
        """Map and verify one frame; corruption becomes a retryable
        :class:`WorkerFailure` (the simulation is fine — only this copy
        of its result was lost in transport)."""
        assert self._session is not None
        try:
            return self._session.reader.read(handle)
        except FrameCorruptionError as error:
            raise WorkerFailure.wrap(
                handle.key, self.run_id, spec.describe(), error
            ) from None

    def _fail(
        self,
        key: str,
        spec: RunSpec,
        error: BaseException,
        attempt: int,
        failures: list[RunFailure],
    ) -> None:
        failure = failure_from_error(key, spec.describe(), error, attempt)
        failures.append(failure)
        if self.journal is not None:
            self.journal.failed(failure, self.run_id)
        if self.fail_fast:
            # The wave is aborted before run_wave can fold the local
            # failure list in, so record it here for run_stats/reports.
            self.failures.append(failure)
            raise SweepFailure([failure])

    def _notify(self, event: RunEvent) -> None:
        if self.on_run is not None:
            self.on_run(event)

    def _journal_submitted(self, key: str, spec: RunSpec, attempt: int) -> None:
        if self.journal is not None:
            self.journal.submitted(key, self.run_id, attempt, spec.describe())

    def _journal_completed(self, key: str, source: str, elapsed: float) -> None:
        if self.journal is not None:
            transport = None
            if source != SOURCE_CACHE:
                transport = (
                    TRANSPORT_SHM if self._session is not None else "pickle"
                )
            self.journal.completed(
                key, self.run_id, source, elapsed, transport=transport
            )

    def _backoff(self, key: str, attempt: int) -> None:
        delay = self.retry.backoff(key, attempt)
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------
    # Serial execution (with the same retry/failure contract)
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        pending: Sequence[tuple[str, RunSpec]],
        sink: _WaveSink,
        failures: list[RunFailure],
    ) -> None:
        for key, spec in pending:
            attempt = 1
            while True:
                self._journal_submitted(key, spec, attempt)
                try:
                    if self._session is not None:
                        # Explicit shm with jobs == 1: round-trip the
                        # result through a real frame in-process, so the
                        # encode/decode path is exercised (and parity-
                        # testable) without a pool.
                        handle = _guarded_execute_frame(
                            spec, self.run_id, attempt,
                            self._session.directory, self.chaos,
                            in_worker=False,
                        )
                        result, elapsed = self._decode(spec, handle)
                    else:
                        result, elapsed = _guarded_execute(
                            spec, self.run_id, attempt, self.chaos,
                            in_worker=False,
                        )
                except WorkerFailure as error:
                    if self.retry.should_retry(error, attempt):
                        self.retried += 1
                        self._backoff(key, attempt)
                        attempt += 1
                        continue
                    self._fail(key, spec, error, attempt, failures)
                    break
                self._complete(
                    key, spec, result, elapsed, SOURCE_SERIAL, sink
                )
                break

    # ------------------------------------------------------------------
    # Pool execution: rounds of submit/drain with worker replacement
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        pending: Sequence[tuple[str, RunSpec]],
        sink: _WaveSink,
        failures: list[RunFailure],
    ) -> None:
        """Fault-isolated parallel execution.

        Work proceeds in *rounds*: each round owns one fresh
        ``ProcessPoolExecutor``, submits everything queued, and drains
        completions.  A broken pool (killed worker) or an expired
        per-spec deadline ends the round — completed-but-unharvested
        futures are salvaged first, transient casualties are re-queued
        under the retry policy, the pool's workers are replaced, and the
        next round continues.  Exhausted attempt budgets become
        :class:`RunFailure` records, never wave aborts.
        """
        queue: deque[tuple[str, RunSpec, int]] = deque(
            (key, spec, 1) for key, spec in pending
        )
        while queue:
            round_items = list(queue)
            queue.clear()
            try:
                self._pool_round(round_items, sink, failures, queue)
            except SweepFailure:
                raise  # fail-fast propagates out of the wave
            except BrokenProcessPool as error:
                # The pool broke outside the drain loop (e.g. at submit
                # time): everything still queued for this round is a
                # transient casualty of the same worker death.
                for key, spec, attempt in round_items:
                    if key in sink:
                        continue
                    self._requeue_or_fail(
                        key, spec, attempt, error, queue, failures
                    )

    def _pool_round(
        self,
        items: list[tuple[str, RunSpec, int]],
        sink: _WaveSink,
        failures: list[RunFailure],
        queue: deque[tuple[str, RunSpec, int]],
    ) -> None:
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        inflight: dict[Future, _Flight] = {}
        replaced_workers = False
        try:
            for key, spec, attempt in items:
                self._journal_submitted(key, spec, attempt)
                if self._session is not None:
                    future = pool.submit(
                        _guarded_execute_frame, spec, self.run_id, attempt,
                        self._session.directory, self.chaos,
                    )
                else:
                    future = pool.submit(
                        _guarded_execute, spec, self.run_id, attempt,
                        self.chaos,
                    )
                inflight[future] = _Flight(key, spec, attempt)
            while inflight:
                done, _ = wait(
                    set(inflight),
                    timeout=_POLL_INTERVAL if self.run_timeout else None,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    flight = inflight.pop(future)
                    broken |= self._harvest(future, flight, sink, queue,
                                            failures)
                if broken:
                    # A worker died: every remaining future is (or will
                    # be) poisoned with BrokenProcessPool.  Drain what
                    # already finished, classify the rest as transient
                    # casualties, and end the round for a fresh pool.
                    self._drain_broken(inflight, sink, queue, failures)
                    return
                if self._expire_deadlines(inflight, queue, failures):
                    # A spec blew its wall-clock budget.  The stuck
                    # worker cannot be cancelled individually, so the
                    # round's workers are terminated and replaced; other
                    # in-flight specs re-queue without burning attempts.
                    self._abandon_round(pool, inflight, sink, queue,
                                        failures)
                    replaced_workers = True
                    return
        finally:
            if replaced_workers:
                _terminate_workers(pool)
            pool.shutdown(wait=not replaced_workers, cancel_futures=True)

    def _harvest(
        self,
        future: Future,
        flight: _Flight,
        sink: _WaveSink,
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> bool:
        """Absorb one finished future; True when the pool is broken."""
        if future.cancelled():
            queue.append((flight.key, flight.spec, flight.attempt))
            return False
        error = future.exception()
        if error is None:
            payload = future.result()
            if isinstance(payload, FrameHandle):
                try:
                    result, elapsed = self._decode(flight.spec, payload)
                except WorkerFailure as decode_error:
                    # The frame failed verification: a transport loss,
                    # re-attempted like any transient fault.
                    self._requeue_or_fail(
                        flight.key, flight.spec, flight.attempt,
                        decode_error, queue, failures,
                    )
                    return False
            else:
                result, elapsed = payload
            self._complete(
                flight.key, flight.spec, result, elapsed, SOURCE_POOL, sink
            )
            return False
        self._requeue_or_fail(
            flight.key, flight.spec, flight.attempt, error, queue, failures
        )
        return isinstance(error, BrokenProcessPool)

    def _requeue_or_fail(
        self,
        key: str,
        spec: RunSpec,
        attempt: int,
        error: BaseException,
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> None:
        if self.retry.should_retry(error, attempt):
            self.retried += 1
            self._backoff(key, attempt)
            queue.append((key, spec, attempt + 1))
        else:
            self._fail(key, spec, error, attempt, failures)

    def _drain_broken(
        self,
        inflight: dict[Future, _Flight],
        sink: _WaveSink,
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> None:
        """After a worker death: salvage completions, re-queue the rest.

        Completed-but-unharvested futures still hold real results — they
        are counted under ``SOURCE_POOL``, not re-run.  Unfinished
        futures carry (or will carry) ``BrokenProcessPool``; they re-
        enter the queue under the retry policy.
        """
        for future, flight in list(inflight.items()):
            if future.done():
                self._harvest(future, flight, sink, queue, failures)
            else:
                self._requeue_or_fail(
                    flight.key,
                    flight.spec,
                    flight.attempt,
                    BrokenProcessPool(
                        "worker process died before this spec finished"
                    ),
                    queue,
                    failures,
                )
        inflight.clear()

    def _expire_deadlines(
        self,
        inflight: dict[Future, _Flight],
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> bool:
        """Stamp deadlines on newly running futures; expire overdue ones.

        Returns True when at least one spec timed out (the caller must
        then replace the round's workers).
        """
        if self.run_timeout is None:
            return False
        now = time.monotonic()
        expired = False
        for future, flight in list(inflight.items()):
            if flight.deadline is None:
                if future.running():
                    flight.deadline = now + self.run_timeout
                continue
            if now < flight.deadline:
                continue
            inflight.pop(future)
            future.cancel()
            expired = True
            self._requeue_or_fail(
                flight.key,
                flight.spec,
                flight.attempt,
                SpecTimeoutError(
                    f"spec {flight.key[:12]} exceeded the "
                    f"{self.run_timeout:.1f}s wall-clock budget "
                    f"(attempt {flight.attempt})"
                ),
                queue,
                failures,
            )
        return expired

    def _abandon_round(
        self,
        pool: ProcessPoolExecutor,
        inflight: dict[Future, _Flight],
        sink: _WaveSink,
        queue: deque[tuple[str, RunSpec, int]],
        failures: list[RunFailure],
    ) -> None:
        """Salvage and re-queue around a worker-replacing teardown."""
        for future, flight in list(inflight.items()):
            if future.done():
                self._harvest(future, flight, sink, queue, failures)
            else:
                # Not timed out itself: a casualty of the teardown, so
                # its attempt is not burned.
                future.cancel()
                queue.append((flight.key, flight.spec, flight.attempt))
        inflight.clear()


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's worker processes (the hung-spec escape hatch).

    ``ProcessPoolExecutor`` has no public per-worker cancellation; when a
    spec must be abandoned mid-run the only safe move is to terminate the
    round's workers and let the next round spawn fresh ones.  Touches the
    private ``_processes`` map — guarded so a stdlib layout change
    degrades to leaking the round's workers rather than crashing.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, AttributeError):
            pass  # already dead, or not a real process object
