"""Execution engine: fan :class:`RunSpec`\\ s out over processes.

The :class:`Executor` is the single funnel through which simulations
run.  For every batch it:

1. deduplicates specs by content hash (a figure often requests the same
   stand-alone reference run many times),
2. serves what it can from the :class:`~repro.exec.cache.ResultCache`,
3. fans the remainder out over a ``ProcessPoolExecutor`` when
   ``jobs > 1`` (falling back to in-process serial execution when
   ``jobs == 1``, when there is only one run, or when the pool dies),
4. persists fresh results to the cache and reports each completion
   through an optional callback, and
5. returns results in the exact order the specs were submitted,
   regardless of completion order.

Simulations are deterministic functions of their spec, so a parallel
batch is bit-identical to a serial one — only wall-clock time changes.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.spec import RunSpec, build_traces
from repro.sim.results import SimulationResult
from repro.common.errors import InvalidValueError

#: Result provenance labels reported via :class:`RunEvent`.
SOURCE_CACHE = "cache"
SOURCE_SERIAL = "serial"
SOURCE_POOL = "pool"


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one spec's simulation in the current process.

    Module-level (picklable) so process-pool workers can receive it; the
    spec is self-contained, so no other state crosses the boundary.
    """
    from repro.sim.engine import SimulationDriver

    driver = SimulationDriver(
        spec.config,
        spec.policy,
        build_traces(spec),
        seed=spec.seed,
        track_rsm_regions=spec.track_rsm_regions,
        validate_every=spec.validate_every,
    )
    return driver.run()


def _timed_execute(spec: RunSpec) -> tuple[SimulationResult, float]:
    started = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - started


@dataclass(frozen=True)
class RunEvent:
    """One completed run, as reported to progress callbacks."""

    spec: RunSpec
    result: SimulationResult
    #: Simulation wall-clock seconds (0 for cache hits).
    elapsed: float
    #: Where the result came from: "cache", "serial", or "pool".
    source: str


class Executor:
    """Runs batches of specs with caching and optional parallelism."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        on_run: Optional[Callable[[RunEvent], None]] = None,
    ) -> None:
        if jobs < 1:
            raise InvalidValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.on_run = on_run
        #: Simulations actually executed (cache hits excluded).
        self.executed = 0

    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> SimulationResult:
        """Run (or fetch) a single spec."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[RunSpec]) -> list[SimulationResult]:
        """Run a batch; results align 1:1 with the submitted specs."""
        specs = list(specs)
        by_key: dict[str, SimulationResult] = {}
        # Deduplicate while preserving first-appearance order so the
        # execution schedule (and therefore any progress output) is
        # deterministic.
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.cache_key(), spec)
        pending: list[tuple[str, RunSpec]] = []
        for key, spec in unique.items():
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                by_key[key] = cached
                self._notify(RunEvent(spec, cached, 0.0, SOURCE_CACHE))
            else:
                pending.append((key, spec))
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._run_pool(pending, by_key)
            else:
                self._run_serial(pending, by_key)
        return [by_key[spec.cache_key()] for spec in specs]

    # ------------------------------------------------------------------
    def _complete(
        self,
        key: str,
        spec: RunSpec,
        result: SimulationResult,
        elapsed: float,
        source: str,
        by_key: dict[str, SimulationResult],
    ) -> None:
        by_key[key] = result
        self.executed += 1
        if self.cache is not None:
            self.cache.put(spec, result)
        self._notify(RunEvent(spec, result, elapsed, source))

    def _notify(self, event: RunEvent) -> None:
        if self.on_run is not None:
            self.on_run(event)

    def _run_serial(
        self,
        pending: Sequence[tuple[str, RunSpec]],
        by_key: dict[str, SimulationResult],
    ) -> None:
        for key, spec in pending:
            result, elapsed = _timed_execute(spec)
            self._complete(key, spec, result, elapsed, SOURCE_SERIAL, by_key)

    def _run_pool(
        self,
        pending: Sequence[tuple[str, RunSpec]],
        by_key: dict[str, SimulationResult],
    ) -> None:
        """Parallel execution with graceful degradation to serial.

        A broken pool (killed worker, fork failure, unpicklable state)
        must not lose the batch: whatever did not complete in the pool is
        re-run serially in this process.
        """
        remaining = dict(pending)
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    key: pool.submit(_timed_execute, spec)
                    for key, spec in pending
                }
                for key, future in futures.items():
                    result, elapsed = future.result()
                    spec = remaining.pop(key)
                    self._complete(
                        key, spec, result, elapsed, SOURCE_POOL, by_key
                    )
        except (BrokenProcessPool, OSError):
            self._run_serial(list(remaining.items()), by_key)
