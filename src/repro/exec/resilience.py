"""Fault isolation for sweep execution: failures, retries, the journal.

A thousand-point sweep must survive its own components: a worker process
dying mid-simulation, a hung spec, a transient ``OSError`` from a busy
filesystem.  This module holds the pieces the rewritten
:class:`~repro.exec.executor.Executor` isolates those faults with:

* :class:`WorkerFailure` — a pickle-safe exception wrapper that carries a
  spec's provenance (cache key, run id, human label) across the process-
  pool pipe, so a raise inside a worker never arrives anonymous.
* :class:`RunFailure` — the structured record of one spec that ultimately
  failed: key, label, exception class, traceback digest, attempt count.
* :class:`RetryPolicy` — bounded re-attempts with deterministic seeded
  jittered backoff, applied only to *retryable* faults (worker death,
  timeout, ``OSError``); a :class:`~repro.common.errors.SimulationError`
  is deterministic and therefore never retried.
* :class:`RunJournal` — an append-only ``journal.jsonl`` beside the
  result cache recording submitted/completed/failed keys, so an
  interrupted sweep can be resumed (``profess run --resume``) and only
  the failures re-attempted.

The taxonomy and the journal format are contract: DESIGN.md §15.
"""

from __future__ import annotations

import hashlib
import json
import os
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.common.errors import InvalidValueError, ReproError, SimulationError

#: Journal format version, stamped on every line.
JOURNAL_VERSION = 1

#: Exception classes whose failures are transient by nature: the fault
#: lives in the *execution environment* (a killed worker, a stalled
#: process, a flaky filesystem), not in the simulation itself, so a
#: bounded re-attempt may succeed.
RETRYABLE_TYPES = (BrokenProcessPool, TimeoutError, OSError, ConnectionError)


class SpecTimeoutError(ReproError, TimeoutError):
    """A spec exceeded its per-run wall-clock budget.

    Derives from :class:`TimeoutError` so the retry taxonomy (and any
    caller catching the builtin) classifies it as transient.
    """


class SweepFailure(ReproError):
    """A wave finished with specs that failed after all retries.

    Carries the structured :class:`RunFailure` records so callers can
    render a failure table instead of a bare traceback.
    """

    def __init__(self, failures: list["RunFailure"]) -> None:
        self.failures = list(failures)
        preview = "; ".join(f.summary() for f in self.failures[:3])
        more = len(self.failures) - 3
        if more > 0:
            preview += f"; ... and {more} more"
        super().__init__(
            f"{len(self.failures)} run(s) failed after retries: {preview}"
        )


class WorkerFailure(ReproError):
    """A worker-side exception, wrapped with its spec's provenance.

    Raised by the pool task wrapper so that any exception crossing the
    pool pipe carries the spec's cache key and run id.  Deliberately
    *flat*: every field is a string/bool positional argument, so the
    default ``Exception`` pickling (``(cls, self.args)``) round-trips it
    losslessly — no chained ``__cause__`` is relied upon, because
    exception chains do not survive the pool pipe.
    """

    def __init__(
        self,
        key: str,
        run_id: str,
        label: str,
        error_type: str,
        message: str,
        traceback_digest: str,
        retryable: bool,
    ) -> None:
        super().__init__(
            key, run_id, label, error_type, message, traceback_digest,
            retryable,
        )
        self.key = key
        self.run_id = run_id
        self.label = label
        self.error_type = error_type
        self.message = message
        self.traceback_digest = traceback_digest
        self.retryable = retryable

    def __str__(self) -> str:
        return (
            f"{self.error_type} in run {self.run_id} spec {self.key[:12]} "
            f"({self.label}): {self.message} [tb {self.traceback_digest}]"
        )

    @classmethod
    def wrap(
        cls, key: str, run_id: str, label: str, error: BaseException
    ) -> "WorkerFailure":
        """Wrap a worker-side exception with spec provenance."""
        return cls(
            key=key,
            run_id=run_id,
            label=label,
            error_type=type(error).__name__,
            message=str(error),
            traceback_digest=traceback_digest(error),
            retryable=isinstance(error, RETRYABLE_TYPES)
            and not isinstance(error, SimulationError),
        )


def traceback_digest(error: BaseException) -> str:
    """Short stable digest of an exception's traceback.

    Two failures with the same digest broke in the same place — the
    digest is the dedup key for failure reports, cheap enough to ship
    over the pool pipe where a full traceback string is not.
    """
    text = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True, slots=True)
class RunFailure:
    """One spec that ultimately failed (all attempts exhausted)."""

    #: The spec's content hash (:meth:`RunSpec.cache_key`).
    key: str
    #: Human-readable spec label (``kind:programs:policy``).
    label: str
    #: Exception class name of the final attempt's error.
    error_type: str
    #: Final attempt's error message.
    message: str
    #: Short SHA-256 of the final attempt's traceback.
    traceback_digest: str
    #: Total attempts made (1 = no retries).
    attempts: int
    #: Whether the final error was classified retryable (it still failed
    #: because the attempt budget ran out).
    retryable: bool

    def summary(self) -> str:
        """One-line form for logs and exception messages."""
        return (
            f"{self.label} [{self.key[:12]}] {self.error_type} "
            f"after {self.attempts} attempt(s)"
        )

    def to_dict(self) -> dict:
        """JSON form (journal lines, failure tables)."""
        return {
            "key": self.key,
            "label": self.label,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
            "attempts": self.attempts,
            "retryable": self.retryable,
        }


def failure_from_error(
    key: str, label: str, error: BaseException, attempts: int
) -> RunFailure:
    """Build the structured record for a spec's final failed attempt."""
    if isinstance(error, WorkerFailure):
        return RunFailure(
            key=key,
            label=error.label or label,
            error_type=error.error_type,
            message=error.message,
            traceback_digest=error.traceback_digest,
            attempts=attempts,
            retryable=error.retryable,
        )
    return RunFailure(
        key=key,
        label=label,
        error_type=type(error).__name__,
        message=str(error),
        traceback_digest=traceback_digest(error),
        attempts=attempts,
        retryable=is_retryable(error),
    )


def is_retryable(error: BaseException) -> bool:
    """The retry taxonomy (DESIGN.md §15).

    Worker death, timeouts, and OS-level faults are transient; a
    :class:`SimulationError` (or any other deterministic library error)
    would fail identically on every attempt and is never retried.
    """
    if isinstance(error, WorkerFailure):
        return error.retryable
    if isinstance(error, SimulationError):
        return False
    return isinstance(error, RETRYABLE_TYPES)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded, deterministic re-attempt policy for retryable faults."""

    #: Re-attempts after the first try (0 = fail on first error).
    retries: int = 1
    #: Base backoff in seconds; attempt ``n`` waits up to
    #: ``base * 2**(n-1)`` (capped), scaled by a deterministic jitter.
    backoff_base: float = 0.05
    #: Upper bound on any single backoff delay.
    backoff_cap: float = 2.0
    #: Jitter seed: same (seed, key, attempt) -> same delay, so reruns
    #: schedule identically and tests can pin the exact waits.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise InvalidValueError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise InvalidValueError("backoff must be >= 0")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether a failed ``attempt`` (1-based) gets another try."""
        return attempt < self.max_attempts and is_retryable(error)

    def backoff(self, key: str, attempt: int) -> float:
        """Deterministic jittered delay before re-attempting ``key``.

        Exponential in the attempt number, scaled by a jitter fraction
        derived from SHA-256 of (seed, key, attempt) — no global RNG
        state, no wall clock, identical across processes.
        """
        if self.backoff_base == 0.0:
            return 0.0
        window = min(
            self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1))
        )
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64
        # Half deterministic floor, half jitter: never zero, never > window.
        return window * (0.5 + 0.5 * jitter)


@dataclass(slots=True)
class JournalState:
    """Replayed journal contents: what a previous run already did."""

    #: Keys whose result landed (simulated or cache-served).
    completed: set[str] = field(default_factory=set)
    #: key -> most recent RunFailure dict for keys that failed and were
    #: never completed afterwards.
    failed: dict[str, dict] = field(default_factory=dict)
    #: Keys ever submitted (superset of completed/failed).
    submitted: set[str] = field(default_factory=set)
    #: Journal lines that could not be parsed (truncated tail writes).
    skipped_lines: int = 0

    def pending(self) -> set[str]:
        """Submitted but neither completed nor failed (interrupted)."""
        return self.submitted - self.completed - set(self.failed)


class RunJournal:
    """Append-only ``journal.jsonl`` recording a sweep's run history.

    One JSON object per line.  Appends go through a single ``os.write``
    on an ``O_APPEND`` descriptor, so concurrent writers (pool rounds,
    parallel CLI invocations sharing a cache) interleave whole lines,
    never fragments; a line truncated by a crash is skipped on replay.
    """

    FILENAME = "journal.jsonl"

    def __init__(self, path: str | Path) -> None:
        path = Path(path)
        if path.is_dir():
            path = path / self.FILENAME
        self.path = path
        #: Lines this instance failed to persist (read-only directory);
        #: journalling is best-effort and never breaks the sweep.
        self.write_errors = 0

    @classmethod
    def beside(cls, cache_dir: str | Path) -> "RunJournal":
        """The journal that lives beside a cache directory's entries."""
        return cls(Path(cache_dir) / cls.FILENAME)

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Append one event line (atomic whole-line write, best-effort)."""
        record = {"v": JOURNAL_VERSION, **record}
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            descriptor = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(descriptor, line.encode("utf-8"))
            finally:
                os.close(descriptor)
        except OSError:
            self.write_errors += 1

    def submitted(self, key: str, run_id: str, attempt: int, label: str) -> None:
        self.append(
            {
                "event": "submitted",
                "key": key,
                "run_id": run_id,
                "attempt": attempt,
                "label": label,
            }
        )

    def completed(
        self,
        key: str,
        run_id: str,
        source: str,
        elapsed: float,
        transport: Optional[str] = None,
    ) -> None:
        record = {
            "event": "completed",
            "key": key,
            "run_id": run_id,
            "source": source,
            "elapsed": round(elapsed, 6),
        }
        # Recorded for post-mortem only: replay ignores it, and a
        # journal written under one transport resumes under another
        # (transport never changes result bytes).
        if transport is not None:
            record["transport"] = transport
        self.append(record)

    def failed(self, failure: RunFailure, run_id: str) -> None:
        self.append(
            {"event": "failed", "run_id": run_id, **failure.to_dict()}
        )

    # ------------------------------------------------------------------
    def replay(self) -> JournalState:
        """Fold the journal into its net state (absent file = empty)."""
        state = JournalState()
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return state
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                event = record["event"]
                key = record["key"]
            except (ValueError, TypeError, KeyError):
                state.skipped_lines += 1
                continue
            if event == "submitted":
                state.submitted.add(key)
            elif event == "completed":
                state.completed.add(key)
                state.failed.pop(key, None)
            elif event == "failed":
                state.failed[key] = record
            else:
                state.skipped_lines += 1
        return state


def format_failure_table(failures: list[RunFailure]) -> str:
    """Render a failure report table (CLI stderr, figure notes)."""
    if not failures:
        return "no failures"
    lines = [
        f"{len(failures)} failed run(s):",
        f"{'spec':<36} {'error':<22} {'attempts':>8}  traceback",
    ]
    for failure in failures:
        label = (
            failure.label if len(failure.label) <= 36 else
            failure.label[:33] + "..."
        )
        lines.append(
            f"{label:<36} {failure.error_type:<22} "
            f"{failure.attempts:>8}  {failure.traceback_digest}"
        )
    return "\n".join(lines)
