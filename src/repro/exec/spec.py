"""The unified simulation-request API: :class:`RunSpec`.

A ``RunSpec`` is a frozen, hashable, picklable description of exactly one
simulation: what to run (programs, policy, trace length, seeds) and the
complete :class:`~repro.common.config.SystemConfig` to run it under.  It
is self-contained — a worker process can execute one without any other
context — and content-addressed: :meth:`RunSpec.cache_key` digests every
field that affects the outcome, so equal keys mean interchangeable
results across processes, CLI invocations, and machines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.common.config import SystemConfig
from repro.common.serialize import canonical_digest
from repro.cpu.trace import Trace
from repro.traces.generator import synthesize_trace
from repro.common.errors import InvalidValueError

#: Run kinds; part of the cache key so e.g. a single-core run and a
#: stand-alone quad-core run of the same program never collide.
KINDS = ("single", "alone", "multi")


@dataclass(frozen=True)
class RunSpec:
    """A complete, content-addressable description of one simulation."""

    #: One of :data:`KINDS` ("single" / "alone" / "multi").
    kind: str
    #: Program mix, in core order; duplicates get distinct trace seeds.
    programs: tuple[str, ...]
    #: Policy spec string (see :func:`repro.policies.registry.build_policy`);
    #: canonicalized at construction so equivalent spellings of one
    #: composition (``"mdm+rsm"`` / ``"profess"``) share a cache key.
    policy: str
    config: SystemConfig
    #: Trace length per program, in requests.
    requests: int
    seed: int
    #: Capacity divisor used for trace synthesis.  Usually equals
    #: ``config.scale``, but kept separate because some sensitivity
    #: experiments vary the memory geometry while holding program
    #: footprints (and thus traces) fixed.
    trace_scale: int
    #: Enable per-region RSM accounting (Table 4 diagnostics).
    track_rsm_regions: bool = False
    #: Audit all controller invariants every N cycles during the run
    #: (0 = off).  Purely diagnostic — a corrupted run raises instead of
    #: returning — so it is deliberately EXCLUDED from :meth:`cache_key`:
    #: a validated result is interchangeable with an unvalidated one,
    #: and cached results are served without re-simulation.
    validate_every: int = 0

    #: Reviewed record of every field :meth:`cache_key` excludes from the
    #: content hash (lint rule K401 enforces it; K402 flags stale
    #: entries).  ``validate_every`` only toggles in-run invariant
    #: auditing — a validated result is byte-identical to an unvalidated
    #: one — so serving either from cache is sound.  See DESIGN.md §16.
    _CACHE_NEUTRAL_FIELDS = ("validate_every",)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if not self.programs:
            raise InvalidValueError("a RunSpec needs at least one program")
        # Canonicalize the policy spec (frozen dataclass: object.__setattr__
        # is the sanctioned escape hatch in __post_init__).  Legacy names
        # map to themselves, so pre-redesign cache keys are untouched.
        from repro.policies.registry import canonical_policy

        object.__setattr__(self, "policy", canonical_policy(self.policy))

    def cache_key(self) -> str:
        """Stable content hash identifying this run's result.

        Any field change — a program, the policy, one config value, the
        trace length, a seed, the diagnostics flag — yields a new key;
        re-creating an identical spec always yields the same key.
        """
        return canonical_digest(
            {
                "kind": self.kind,
                "programs": list(self.programs),
                "policy": self.policy,
                "config": self.config.cache_token(),
                "requests": self.requests,
                "seed": self.seed,
                "trace_scale": self.trace_scale,
                "track_rsm_regions": self.track_rsm_regions,
            }
        )

    def describe(self) -> str:
        """Short human-readable label (progress lines, cache metadata)."""
        return f"{self.kind}:{'+'.join(self.programs)}:{self.policy}"

    def with_config(self, **overrides: object) -> "RunSpec":
        """A copy with top-level config fields replaced."""
        return replace(self, config=replace(self.config, **overrides))


def build_traces(spec: RunSpec) -> list[tuple[str, Trace]]:
    """Synthesize the (name, trace) pairs a spec's simulation consumes.

    Duplicate programs in a mix get distinct per-instance seeds
    (``seed * 1000 + instance``), matching the runner's convention.
    """
    return workload_traces(
        spec.programs, spec.requests, spec.trace_scale, spec.seed
    )


def workload_traces(
    programs: Sequence[str], requests: int, scale: int, seed: int
) -> list[tuple[str, Trace]]:
    """Traces for a program mix; duplicates get distinct seeds."""
    seen: dict[str, int] = {}
    traces = []
    for program in programs:
        instance = seen.get(program, 0)
        seen[program] = instance + 1
        traces.append(
            (
                program,
                synthesize_trace(
                    program,
                    num_requests=requests,
                    scale=scale,
                    seed=seed * 1000 + instance,
                ),
            )
        )
    return traces
