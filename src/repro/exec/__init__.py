"""Execution subsystem: unified run specs, disk caching, parallelism.

Seven layers (see DESIGN.md §9 / §15 / §17):

* :class:`~repro.exec.spec.RunSpec` — a frozen, content-addressed
  description of one simulation.
* :class:`~repro.exec.cache.ResultCache` — results persisted to disk
  under :meth:`RunSpec.cache_key`, shared across processes and runs,
  integrity-checked on read with corrupt entries quarantined.
* :class:`~repro.exec.executor.Executor` — batch execution over a
  process pool with deterministic ordering, per-spec fault isolation,
  retries, wall-clock timeouts, and worker replacement.
* :mod:`repro.exec.transport` — the shm result transport: workers write
  length-prefixed frames into mmap-backed segments and return small
  handles over the pool pipe instead of pickled result dicts.
* :mod:`repro.exec.streaming` — wave reducers (``run_wave(...,
  reducer=...)``) that fold completions as they land, so figure sweeps
  never materialize a full wave in the parent.
* :mod:`repro.exec.resilience` — the failure taxonomy
  (:class:`RunFailure`, :class:`RetryPolicy`) and the append-only
  :class:`RunJournal` behind ``profess run --resume``.
* :mod:`repro.exec.chaos` — deterministic fault injection for testing
  every degradation path, including frame-write faults.
"""

from repro.exec.cache import CACHE_VERSION, ResultCache
from repro.exec.chaos import ChaosError, ChaosPlan, TruncatingResultCache
from repro.exec.executor import (
    Executor,
    RunEvent,
    WaveResult,
    execute_spec,
)
from repro.exec.resilience import (
    RetryPolicy,
    RunFailure,
    RunJournal,
    SpecTimeoutError,
    SweepFailure,
    WorkerFailure,
    format_failure_table,
)
from repro.exec.spec import RunSpec, build_traces, workload_traces
from repro.exec.streaming import GroupReducer, ListReducer, WaveReducer
from repro.exec.transport import (
    TRANSPORTS,
    FrameCorruptionError,
    FrameHandle,
    FrameReader,
    FrameWriter,
    ShmSession,
    resolve_transport,
)

__all__ = [
    "CACHE_VERSION",
    "ChaosError",
    "ChaosPlan",
    "Executor",
    "FrameCorruptionError",
    "FrameHandle",
    "FrameReader",
    "FrameWriter",
    "GroupReducer",
    "ListReducer",
    "ResultCache",
    "RetryPolicy",
    "RunEvent",
    "RunFailure",
    "RunJournal",
    "RunSpec",
    "ShmSession",
    "SpecTimeoutError",
    "SweepFailure",
    "TRANSPORTS",
    "TruncatingResultCache",
    "WaveReducer",
    "WaveResult",
    "WorkerFailure",
    "build_traces",
    "execute_spec",
    "format_failure_table",
    "resolve_transport",
    "workload_traces",
]
