"""Execution subsystem: unified run specs, disk caching, parallelism.

Three layers (see DESIGN.md):

* :class:`~repro.exec.spec.RunSpec` — a frozen, content-addressed
  description of one simulation.
* :class:`~repro.exec.cache.ResultCache` — results persisted to disk
  under :meth:`RunSpec.cache_key`, shared across processes and runs.
* :class:`~repro.exec.executor.Executor` — batch execution over a
  process pool with deterministic ordering and serial fallback.
"""

from repro.exec.cache import CACHE_VERSION, ResultCache
from repro.exec.executor import Executor, RunEvent, execute_spec
from repro.exec.spec import RunSpec, build_traces, workload_traces

__all__ = [
    "CACHE_VERSION",
    "Executor",
    "ResultCache",
    "RunEvent",
    "RunSpec",
    "build_traces",
    "execute_spec",
    "workload_traces",
]
