"""Deterministic fault injection for the execution subsystem.

The chaos harness makes the Executor's degradation paths *testable*: a
seeded :class:`ChaosPlan` decides — purely from SHA-256 of (seed, spec
key, attempt) — whether a given attempt is killed (worker ``os._exit``),
raised out of (a :class:`ChaosError` mid-"simulation"), or stalled past
its wall-clock budget.  The decisions are identical in every process and
on every rerun, so the chaos suite (``tests/test_chaos.py``) can assert
exact recovery behaviour: which specs fail, how many attempts each took,
and that the salvaged sweep is byte-identical to a clean serial run.

Cache-write faults are injected separately by
:class:`TruncatingResultCache`, which truncates the serialized payload
of selected keys exactly once — simulating a process killed mid-write —
so the quarantine path of :class:`~repro.exec.cache.ResultCache` can be
exercised deterministically.

Injection defaults to the *first* attempt of each spec only, so a
retried attempt deterministically succeeds; raise the
``inject_attempts`` bound to model persistent faults instead.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.common.errors import InvalidValueError, ReproError
from repro.exec.cache import ResultCache
from repro.exec.spec import RunSpec
from repro.sim.results import SimulationResult

#: Injection kinds, in the priority order ties are broken in.
ACTION_KILL = "kill"
ACTION_RAISE = "raise"
ACTION_STALL = "stall"

#: Frame-transport injection kinds (shm transport only): applied at
#: frame-*write* time, after the simulation itself succeeded.
ACTION_FRAME_KILL = "frame-kill"
ACTION_FRAME_CORRUPT = "frame-corrupt"


class ChaosError(ReproError):
    """The injected mid-simulation failure.

    Deliberately *not* retryable (it models a deterministic simulation
    bug), so it exercises the fatal-failure path: the spec must land in
    the wave's :class:`~repro.exec.resilience.RunFailure` list and be
    re-attempted only by an explicit ``--resume``.
    """


class ChaosKilledError(ReproError, OSError):
    """Stand-in for a worker kill on the in-process serial path.

    ``os._exit`` in serial mode would take the driving process down with
    it, so serial execution degrades a kill injection to this exception;
    deriving from :class:`OSError` keeps it in the retryable class, like
    the real :class:`BrokenProcessPool` it models.
    """


@dataclass(frozen=True, slots=True)
class ChaosPlan:
    """Seeded, stateless fault-injection schedule.

    Rates are independent probabilities evaluated per (key, attempt) from
    a hash — no RNG state, no ordering sensitivity.  A spec draws one
    action at most, with kills taking precedence over raises over stalls.
    """

    seed: int = 0
    #: Probability a worker is killed outright (``os._exit``).
    kill_rate: float = 0.0
    #: Probability a :class:`ChaosError` is raised mid-simulation.
    raise_rate: float = 0.0
    #: Probability the spec stalls (sleeps) past its wall-clock budget.
    stall_rate: float = 0.0
    #: How long a stalled spec sleeps before giving up on being killed.
    stall_seconds: float = 30.0
    #: Probability a worker dies *mid-frame-write* (shm transport): the
    #: simulation succeeds, a partial frame lands on disk, and the
    #: process exits before its handle crosses the pipe.
    frame_kill_rate: float = 0.0
    #: Probability a frame's payload is silently truncated on write (shm
    #: transport): the handle arrives intact but the parent's digest
    #: check must reject the bytes it points at.
    frame_corrupt_rate: float = 0.0
    #: Attempts eligible for injection (1 = first attempt only, so every
    #: retry deterministically succeeds).
    inject_attempts: int = 1

    def __post_init__(self) -> None:
        rates = (
            self.kill_rate,
            self.raise_rate,
            self.stall_rate,
            self.frame_kill_rate,
            self.frame_corrupt_rate,
        )
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise InvalidValueError("chaos rates must be in [0, 1]")
        if self.inject_attempts < 0:
            raise InvalidValueError("inject_attempts must be >= 0")

    # ------------------------------------------------------------------
    def _fraction(self, key: str, attempt: int, kind: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}:{kind}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def action_for(self, key: str, attempt: int) -> Optional[str]:
        """The injected action for one attempt, or None (run clean)."""
        if attempt > self.inject_attempts:
            return None
        if self._fraction(key, attempt, ACTION_KILL) < self.kill_rate:
            return ACTION_KILL
        if self._fraction(key, attempt, ACTION_RAISE) < self.raise_rate:
            return ACTION_RAISE
        if self._fraction(key, attempt, ACTION_STALL) < self.stall_rate:
            return ACTION_STALL
        return None

    def frame_action_for(self, key: str, attempt: int) -> Optional[str]:
        """The frame-write fault for one attempt, or None (clean write).

        Evaluated by the shm transport after the simulation itself ran
        clean; kill takes precedence over corruption, mirroring
        :meth:`action_for`.
        """
        if attempt > self.inject_attempts:
            return None
        if (
            self._fraction(key, attempt, ACTION_FRAME_KILL)
            < self.frame_kill_rate
        ):
            return ACTION_FRAME_KILL
        if (
            self._fraction(key, attempt, ACTION_FRAME_CORRUPT)
            < self.frame_corrupt_rate
        ):
            return ACTION_FRAME_CORRUPT
        return None

    def victims(self, keys: list[str], attempt: int = 1) -> dict[str, str]:
        """key -> action for every key the plan will touch (test oracle)."""
        actions = {}
        for key in keys:
            action = self.action_for(key, attempt)
            if action is not None:
                actions[key] = action
        return actions

    def frame_victims(
        self, keys: list[str], attempt: int = 1
    ) -> dict[str, str]:
        """key -> frame fault the plan will inject (test oracle)."""
        actions = {}
        for key in keys:
            action = self.frame_action_for(key, attempt)
            if action is not None:
                actions[key] = action
        return actions


def apply_chaos(
    plan: ChaosPlan, key: str, attempt: int, in_worker: bool
) -> None:
    """Execute the plan's action for one attempt (no-op when clean).

    Called by the executor's task wrapper at the top of every attempt.
    ``in_worker`` distinguishes a pool worker (where a kill really is
    ``os._exit``) from the in-process serial path (where it degrades to
    :class:`ChaosKilledError` so the driver survives).
    """
    action = plan.action_for(key, attempt)
    if action is None:
        return
    if action == ACTION_KILL:
        if in_worker:
            os._exit(3)
        raise ChaosKilledError(
            f"chaos: injected worker kill for {key[:12]} attempt {attempt}"
        )
    if action == ACTION_RAISE:
        raise ChaosError(
            f"chaos: injected failure for {key[:12]} attempt {attempt}"
        )
    if action == ACTION_STALL:
        time.sleep(plan.stall_seconds)


class TruncatingResultCache(ResultCache):
    """A :class:`ResultCache` that corrupts selected writes exactly once.

    Keys for which ``sha256(seed:key:truncate)`` falls under
    ``truncate_rate`` have their *first* stored payload cut in half —
    the on-disk picture of a process killed between write and flush.
    Later stores of the same key write cleanly, so a resumed sweep can
    repopulate the entry after the corrupt one is quarantined.
    """

    def __init__(
        self,
        directory: str | Path,
        seed: int = 0,
        truncate_rate: float = 0.0,
    ) -> None:
        super().__init__(directory)
        self.seed = seed
        self.truncate_rate = truncate_rate
        self._truncated: set[str] = set()

    def _should_truncate(self, key: str) -> bool:
        digest = hashlib.sha256(
            f"{self.seed}:{key}:truncate".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return fraction < self.truncate_rate

    def truncate_victims(self, keys: list[str]) -> list[str]:
        """The keys whose first write this cache will corrupt."""
        return [key for key in keys if self._should_truncate(key)]

    def put(self, spec: RunSpec, result: SimulationResult) -> Path:
        key = spec.cache_key()
        path = super().put(spec, result)
        if self._should_truncate(key) and key not in self._truncated:
            self._truncated.add(key)
            try:
                data = path.read_bytes()
                path.write_bytes(data[: len(data) // 2])
            except OSError:
                pass  # injection is best-effort; a clean write is fine too
        return path
