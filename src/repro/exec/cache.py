"""Disk-backed result cache keyed by :meth:`RunSpec.cache_key`.

One JSON file per run, named by the spec's content hash and stamped with
a format version.  Results written by one process — a CLI invocation, a
benchmark session, a CI job — warm-start every later one: a matching key
and version is a hit, anything else (absent file, corrupt JSON, stale
version) is a miss that falls through to simulation.

Writes are atomic (temp file + rename) so concurrent workers sharing a
cache directory can never observe a half-written entry.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.exec.spec import RunSpec
from repro.sim.results import SimulationResult

#: Bump when the on-disk payload layout or SimulationResult schema
#: changes incompatibly; older entries then read as misses.
CACHE_VERSION = 1


class ResultCache:
    """A directory of simulation results, content-addressed by spec."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[SimulationResult]:
        """The cached result for ``spec``, or None (counted as a miss)."""
        path = self._path(spec.cache_key())
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        try:
            result = SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Persist one result; returns its path."""
        key = spec.cache_key()
        path = self._path(key)
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            "spec": spec.describe(),
            "result": result.to_dict(),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload) + "\n")
        os.replace(tmp, path)
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        """Hit/miss/store counters for this cache instance's lifetime."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
