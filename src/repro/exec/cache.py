"""Disk-backed result cache keyed by :meth:`RunSpec.cache_key`.

One JSON file per run, named by the spec's content hash and stamped with
a format version.  Results written by one process — a CLI invocation, a
benchmark session, a CI job — warm-start every later one: a matching key
and version is a hit, anything else (absent file, corrupt JSON, stale
version) is a miss that falls through to simulation.

Writes are atomic (temp file + rename) so concurrent workers sharing a
cache directory can never observe a half-written entry, and best-effort:
a read-only cache directory degrades to a cache that never hits, it
never breaks the sweep.

Integrity (DESIGN.md §15): every payload carries a SHA-256 digest of its
canonical result serialization, verified on read.  An entry that fails
*any* read check — unparseable JSON, stale version, digest mismatch,
undecodable result — is moved to ``<cache>/quarantine/`` immediately, so
a corrupt file costs one quarantine instead of a silent re-miss (and a
re-simulation) on every future lookup; the quarantined bytes stay on
disk for diagnosis.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro.exec.spec import RunSpec
from repro.sim.results import SimulationResult

#: Bump when the on-disk payload layout or SimulationResult schema
#: changes incompatibly; older entries then read as misses.
#: v2: payloads carry a "sha256" integrity digest, verified on read.
CACHE_VERSION = 2

#: Subdirectory (inside the cache directory) corrupt entries move to.
QUARANTINE_DIR = "quarantine"


def payload_digest(result_dict: dict) -> str:
    """Canonical SHA-256 of one serialized result (the integrity stamp)."""
    text = json.dumps(result_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of simulation results, content-addressed by spec."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass  # read-only parent: behave as an always-miss cache
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt/stale entries moved to quarantine by this instance.
        self.quarantined = 0
        #: Stores that could not be persisted (read-only directory).
        self.store_errors = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[SimulationResult]:
        """The cached result for ``spec``, or None (counted as a miss).

        A present-but-unusable entry (corrupt JSON, stale version, digest
        mismatch, undecodable result) is quarantined on first sight.
        """
        path = self._path(spec.cache_key())
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return self._reject(path, "unparseable JSON")
        if not isinstance(payload, dict):
            return self._reject(path, "payload is not an object")
        if payload.get("version") != CACHE_VERSION:
            return self._reject(
                path, f"version {payload.get('version')!r} != {CACHE_VERSION}"
            )
        result_dict = payload.get("result")
        if (
            not isinstance(result_dict, dict)
            or payload.get("sha256") != payload_digest(result_dict)
        ):
            return self._reject(path, "integrity digest mismatch")
        try:
            result = SimulationResult.from_dict(result_dict)
        except (KeyError, TypeError, ValueError):
            return self._reject(path, "result failed to decode")
        self.hits += 1
        return result

    def _reject(self, path: Path, reason: str) -> None:
        """Quarantine an unusable entry; always counts as a miss."""
        self.misses += 1
        quarantine = self.directory / QUARANTINE_DIR
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
            self.quarantined += 1
        except OSError:
            # Read-only cache: leave the entry in place; still a miss.
            return None
        try:
            (quarantine / f"{path.stem}.reason.txt").write_text(reason + "\n")
        except OSError:
            pass  # the moved entry alone is enough to diagnose
        return None

    def put(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Persist one result (best-effort); returns its path."""
        key = spec.cache_key()
        path = self._path(key)
        result_dict = result.to_dict()
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            "spec": spec.describe(),
            "sha256": payload_digest(result_dict),
            "result": result_dict,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload) + "\n")
            os.replace(tmp, path)
        except OSError:
            self.store_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass  # nothing was written
            return path
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def quarantine_count(self) -> int:
        """Entries currently sitting in the quarantine directory."""
        quarantine = self.directory / QUARANTINE_DIR
        return sum(1 for _ in quarantine.glob("*.json"))

    def prune_quarantine(self) -> int:
        """Delete quarantined entries (and their reason files).

        Quarantine preserves corrupt bytes for diagnosis, but nothing
        expires them — a long-lived shared cache directory accumulates
        them unbounded.  Returns how many *entries* were removed
        (``profess cache --prune-quarantine``).
        """
        quarantine = self.directory / QUARANTINE_DIR
        removed = 0
        for path in quarantine.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue  # racing pruner or read-only dir: skip
        for reason in quarantine.glob("*.reason.txt"):
            try:
                reason.unlink()
            except OSError:
                pass  # best-effort cleanup of the annotations
        return removed

    def stats(self) -> dict[str, int]:
        """Hit/miss/store counters for this cache instance's lifetime."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "store_errors": self.store_errors,
        }
